//! The simulation engine: world + infrastructure + protocol driver.

use crate::{check_answer, DownlinkMode, EpisodeMetrics, SimConfig, SnapshotOracle, VerifyMode};
use mknn_core::ShardCoordinator;
use mknn_geom::{Circle, ObjectId, Point, QueryId, Tick};
use mknn_index::GridIndex;
use mknn_mobility::World;
use mknn_net::{
    AnswerUpdate, CrashWindow, Delivery, DownlinkBuilder, DownlinkMsg, FaultPlan, FaultyLink,
    MsgKind, NetStats, ObjReport, OpCounters, Outbox, ProbeService, Protocol, QuerySpec,
    QueryStreams, Recipient, ReplStore, ServerPhase, ShardTask, UplinkMsg, Uplinks, Wire,
    LINK_HEADER_BITS,
};
use std::collections::BTreeMap;
use std::time::Instant;

/// The harness's synchronous probe channel: answers from true positions,
/// charging every probe geocast/unicast and every reply before returning.
///
/// A probe round trip is one synchronous RPC, so the fault layer only
/// applies **loss and churn** to it (a duplicated or delayed reply is
/// indistinguishable from a lost one to a caller that waits exactly one
/// round): the request leg can fail with the downlink loss rate, the reply
/// leg with the uplink loss rate, and offline devices never answer.
struct EngineProbe<'a, 'b> {
    infra: &'a GridIndex,
    world: &'a World,
    stats: &'a mut NetStats,
    link: Option<&'a mut FaultyLink>,
    coord: &'a mut ShardCoordinator,
    /// Present in scoped downlink mode: probe request legs are staged into
    /// the tick's frames (priced per interested device) instead of being
    /// charged per overlapped cell.
    builder: Option<&'a mut DownlinkBuilder<'b>>,
}

impl ProbeService for EngineProbe<'_, '_> {
    fn probe(
        &mut self,
        query: QueryId,
        zone: mknn_geom::Circle,
        exclude: ObjectId,
    ) -> Vec<ObjReport> {
        let msg = DownlinkMsg::Probe { query, zone };
        let cells = self.infra.cells_overlapping(&zone);
        let bytes = if self.builder.is_some() {
            0
        } else {
            msg.size_bytes()
        };
        self.stats.count_geocast(MsgKind::Probe, bytes, cells);
        // The probe zone scatters to every covering shard; each foreign one
        // merges its partial answer back at the home shard afterwards.
        self.coord
            .probe_scatter(query, &zone, self.stats, self.link.as_deref_mut());
        let mut out = Vec::new();
        for n in self.infra.range(&zone) {
            if n.id == exclude {
                continue;
            }
            let mut delivery = Delivery::Delivered;
            if let Some(link) = self.link.as_deref_mut() {
                // Request leg: an offline device never hears the geocast; an
                // online one misses it with the downlink loss rate.
                if link.is_offline(n.id.index()) {
                    self.stats.count_dropped();
                    delivery = Delivery::Offline;
                } else if link.probe_leg_lost(query, link.plan().down_loss, self.stats) {
                    delivery = Delivery::Lost;
                }
            }
            if let Some(b) = self.builder.as_deref_mut() {
                b.stage(n.id, msg, delivery);
            }
            if delivery != Delivery::Delivered {
                continue;
            }
            let o = self.world.object(n.id);
            let reply = UplinkMsg::ProbeReply {
                query,
                pos: o.pos,
                vel: o.vel,
            };
            self.stats
                .count_uplink(MsgKind::ProbeReply, reply.size_bytes());
            if let Some(link) = self.link.as_deref_mut() {
                // Reply leg: the device transmitted (charged above) but the
                // uplink may still be lost in flight.
                if link.probe_leg_lost(query, link.plan().up_loss, self.stats) {
                    continue;
                }
            }
            out.push(ObjReport {
                id: n.id,
                pos: o.pos,
                vel: o.vel,
            });
        }
        // Gather: delivered replies surface at the shard owning the sender's
        // block; foreign shards ship their candidates home as one partial
        // answer each, merged in ascending shard order.
        let mut per_shard: BTreeMap<u32, usize> = BTreeMap::new();
        for r in &out {
            *per_shard.entry(self.coord.shard_of(r.pos)).or_insert(0) += 1;
        }
        for (shard, count) in per_shard {
            self.coord
                .probe_gather(query, shard, count, self.stats, self.link.as_deref_mut());
        }
        out
    }

    fn poll(&mut self, query: QueryId, id: ObjectId) -> Option<ObjReport> {
        // Ids the world does not track — foreign or beyond the population —
        // get `None` without charging any traffic: there is no device to
        // page. World ids are dense (index i is ObjectId(i), asserted at
        // construction), so the bounds check alone identifies the device.
        if id.index() >= self.world.len() {
            return None;
        }
        let o = self.world.object(id);
        let ask = DownlinkMsg::Probe {
            query,
            zone: mknn_geom::Circle::new(o.pos, 0.0),
        };
        let bytes = if self.builder.is_some() {
            0
        } else {
            ask.size_bytes()
        };
        self.stats.count_unicast(MsgKind::Probe, bytes);
        // A poll into a foreign block is forwarded there and the reply
        // forwarded back.
        self.coord.route_unicast(
            query,
            o.pos,
            ask.size_bytes(),
            self.stats,
            self.link.as_deref_mut(),
        );
        let mut delivery = Delivery::Delivered;
        if let Some(link) = self.link.as_deref_mut() {
            if link.is_offline(id.index()) {
                self.stats.count_dropped();
                delivery = Delivery::Offline;
            } else if link.probe_leg_lost(query, link.plan().down_loss, self.stats) {
                delivery = Delivery::Lost;
            }
        }
        if let Some(b) = self.builder.as_deref_mut() {
            b.stage(id, ask, delivery);
        }
        if delivery != Delivery::Delivered {
            return None;
        }
        let reply = UplinkMsg::ProbeReply {
            query,
            pos: o.pos,
            vel: o.vel,
        };
        self.stats
            .count_uplink(MsgKind::ProbeReply, reply.size_bytes());
        self.coord.route_uplink(
            Some(query),
            o.pos,
            reply.size_bytes(),
            self.stats,
            self.link.as_deref_mut(),
        );
        if let Some(link) = self.link.as_deref_mut() {
            if link.probe_leg_lost(query, link.plan().up_loss, self.stats) {
                return None;
            }
        }
        Some(ObjReport {
            id,
            pos: o.pos,
            vel: o.vel,
        })
    }
}

/// A coordinator side effect recorded by a [`ShardProbe`] during the
/// parallel server phase. The coordinator is shared *read-only* across the
/// phase's worker threads, so its mutating charges (backbone legs, shard
/// load bumps, backbone fault draws) are logged per shard and replayed in
/// ascending shard order after the phase — the replay order is a pure
/// function of the shard partition, so metrics are identical at any thread
/// count, and at `G = 1` the single log preserves the exact monolithic
/// charge order.
enum CoordCharge {
    /// `probe` scattered a zone to its covering shards.
    ProbeScatter { query: QueryId, zone: Circle },
    /// Delivered probe replies surfaced at `shard` and merge at the home.
    ProbeGather {
        query: QueryId,
        shard: u32,
        count: usize,
    },
    /// `poll` paged a device at `pos` (request leg).
    RouteUnicast {
        query: QueryId,
        pos: Point,
        bytes: usize,
    },
    /// `poll`'s reply surfaced at the shard owning `pos` (reply leg).
    RouteUplink {
        query: QueryId,
        pos: Point,
        bytes: usize,
    },
}

/// Per-shard accumulation buffer for one server phase: everything a shard's
/// worker produces that must merge into engine-global state afterwards.
#[derive(Default)]
struct ShardBuf {
    /// Device-facing traffic this shard's probes charged (commutative
    /// counters; merged in ascending shard order).
    stats: NetStats,
    /// The fault-fate streams of this shard's homed queries, moved out of
    /// the [`FaultyLink`] for the phase and restored afterwards. `None` on
    /// a perfect link.
    streams: Option<QueryStreams>,
    /// Deferred coordinator charges, in issue order.
    charges: Vec<CoordCharge>,
    /// Probe deliveries to stage on the scoped downlink builder (empty in
    /// legacy mode).
    staged: Vec<(ObjectId, DownlinkMsg, Delivery)>,
}

/// The per-shard probe channel handed to [`ShardTask`]s: behaviorally
/// identical to [`EngineProbe`], but safe to drive from a worker thread.
/// Shared engine state (`infra`, `world`, `coord`, the offline mask) is
/// read-only; everything it must mutate — traffic counters, fault draws
/// from this shard's query streams, coordinator charges, builder stagings —
/// lands in the shard's own [`ShardBuf`], which the engine merges and
/// replays in ascending shard order after the phase.
struct ShardProbe<'a> {
    infra: &'a GridIndex,
    /// True positions and velocities, indexed by `ObjectId::index` (the
    /// slices, not the [`World`], which is not `Sync` across workers).
    pos: &'a [Point],
    vel: &'a [mknn_geom::Vector],
    /// This tick's offline mask (present iff a fault link is active).
    offline: Option<&'a [bool]>,
    /// The fault plan, copied out of the link (`None` on a perfect link).
    plan: Option<FaultPlan>,
    tick: Tick,
    /// Scoped downlink mode: probe request legs are staged into frames
    /// (priced per interested device) instead of charged per message.
    scoped: bool,
    coord: &'a mknn_core::ShardCoordinator,
    buf: &'a mut ShardBuf,
}

impl ShardProbe<'_> {
    fn is_offline(&self, idx: usize) -> bool {
        self.offline
            .is_some_and(|m| m.get(idx).copied().unwrap_or(false))
    }

    /// One probe-leg loss draw from `query`'s fate stream — the same gate
    /// and draw as [`FaultyLink::probe_leg_lost`], against the split-out
    /// copy of the stream.
    fn leg_lost(&mut self, query: QueryId, loss: f64) -> bool {
        match (&self.plan, self.buf.streams.as_mut()) {
            (Some(plan), Some(streams)) if plan.active_at(self.tick) => {
                plan.draw_leg_lost(streams.rng(query), loss, &mut self.buf.stats)
            }
            _ => false,
        }
    }
}

impl ProbeService for ShardProbe<'_> {
    fn probe(&mut self, query: QueryId, zone: Circle, exclude: ObjectId) -> Vec<ObjReport> {
        let msg = DownlinkMsg::Probe { query, zone };
        let cells = self.infra.cells_overlapping(&zone);
        let bytes = if self.scoped { 0 } else { msg.size_bytes() };
        self.buf.stats.count_geocast(MsgKind::Probe, bytes, cells);
        self.buf
            .charges
            .push(CoordCharge::ProbeScatter { query, zone });
        let down_loss = self.plan.map_or(0.0, |p| p.down_loss);
        let up_loss = self.plan.map_or(0.0, |p| p.up_loss);
        let mut out = Vec::new();
        for n in self.infra.range(&zone) {
            if n.id == exclude {
                continue;
            }
            let mut delivery = Delivery::Delivered;
            if self.is_offline(n.id.index()) {
                self.buf.stats.count_dropped();
                delivery = Delivery::Offline;
            } else if self.leg_lost(query, down_loss) {
                delivery = Delivery::Lost;
            }
            if self.scoped {
                self.buf.staged.push((n.id, msg, delivery));
            }
            if delivery != Delivery::Delivered {
                continue;
            }
            let (pos, vel) = (self.pos[n.id.index()], self.vel[n.id.index()]);
            let reply = UplinkMsg::ProbeReply { query, pos, vel };
            self.buf
                .stats
                .count_uplink(MsgKind::ProbeReply, reply.size_bytes());
            if self.leg_lost(query, up_loss) {
                continue;
            }
            out.push(ObjReport { id: n.id, pos, vel });
        }
        let mut per_shard: BTreeMap<u32, usize> = BTreeMap::new();
        for r in &out {
            *per_shard.entry(self.coord.shard_of(r.pos)).or_insert(0) += 1;
        }
        for (shard, count) in per_shard {
            self.buf.charges.push(CoordCharge::ProbeGather {
                query,
                shard,
                count,
            });
        }
        out
    }

    fn poll(&mut self, query: QueryId, id: ObjectId) -> Option<ObjReport> {
        if id.index() >= self.pos.len() {
            return None;
        }
        let (pos, vel) = (self.pos[id.index()], self.vel[id.index()]);
        let ask = DownlinkMsg::Probe {
            query,
            zone: Circle::new(pos, 0.0),
        };
        let bytes = if self.scoped { 0 } else { ask.size_bytes() };
        self.buf.stats.count_unicast(MsgKind::Probe, bytes);
        self.buf.charges.push(CoordCharge::RouteUnicast {
            query,
            pos,
            bytes: ask.size_bytes(),
        });
        let mut delivery = Delivery::Delivered;
        if self.is_offline(id.index()) {
            self.buf.stats.count_dropped();
            delivery = Delivery::Offline;
        } else if self.leg_lost(query, self.plan.map_or(0.0, |p| p.down_loss)) {
            delivery = Delivery::Lost;
        }
        if self.scoped {
            self.buf.staged.push((id, ask, delivery));
        }
        if delivery != Delivery::Delivered {
            return None;
        }
        let reply = UplinkMsg::ProbeReply { query, pos, vel };
        self.buf
            .stats
            .count_uplink(MsgKind::ProbeReply, reply.size_bytes());
        self.buf.charges.push(CoordCharge::RouteUplink {
            query,
            pos,
            bytes: reply.size_bytes(),
        });
        if self.leg_lost(query, self.plan.map_or(0.0, |p| p.up_loss)) {
            return None;
        }
        Some(ObjReport { id, pos, vel })
    }
}

/// A running episode: steps the world, drives the protocol, routes and
/// charges all traffic, and verifies answers.
pub struct Simulation {
    world: World,
    proto: Box<dyn Protocol>,
    specs: Vec<QuerySpec>,
    infra: GridIndex,
    inboxes: Vec<Vec<DownlinkMsg>>,
    verify: VerifyMode,
    metrics: EpisodeMetrics,
    tick: Tick,
    planned_ticks: u64,
    series: Option<crate::TickSeries>,
    /// Fault-injection layer; `None` under [`mknn_net::FaultPlan::none`], so
    /// the perfect-link fast path is the exact pre-fault code path.
    link: Option<FaultyLink>,
    /// Per query: how many consecutive oracle checks have been inexact
    /// (feeds the staleness metrics).
    stale_streak: Vec<u64>,
    /// The sharded server tier's routing overlay (DESIGN.md §9). Always
    /// present — at `shards = 1` every leg is intra-shard, so the overlay
    /// never charges and the episode is byte-identical to the pre-shard
    /// engine.
    coord: ShardCoordinator,
    /// Verify with the `O(N)`-per-query brute-force scan instead of the
    /// per-tick snapshot index (`MKNN_ORACLE=brute`). Results are
    /// byte-identical either way — the switch exists so the equivalence and
    /// speedup gates in `scripts/verify.sh` can run both paths.
    oracle_brute: bool,
    /// Worker pool for the chunked client phase (DESIGN.md §5.2). Resolved
    /// once at construction — from `SimConfig::client_threads` when pinned,
    /// else from `MKNN_THREADS` — so a mid-episode environment change cannot
    /// alter chunking.
    pool: mknn_util::Pool,
    /// Interest-scoped downlink replication (DESIGN.md §10): per-device
    /// delta/ack state, driving the frame batching in `route`. Only
    /// consulted when `scoped` is set.
    repl: ReplStore,
    /// Whether `SimConfig::downlink` selected the scoped byte model.
    scoped: bool,
    /// Per query: the answer list most recently pushed to its focal device
    /// (rank order for ordered protocols, canonical ascending-id order
    /// otherwise). The push trigger — replicate when the maintained answer
    /// differs from this — is mode-independent, so legacy and scoped
    /// episodes push at exactly the same ticks.
    last_sent: Vec<Vec<ObjectId>>,
    /// The episode's planned shard-crash windows (DESIGN.md §11), resolved
    /// once at construction from the fault plan — a pure function of
    /// `(plan, seed, shards, ticks)`, so reruns and thread counts agree.
    /// Empty without a link or under a crash-free plan.
    crashes: Vec<CrashWindow>,
    /// This tick's per-device offline mask, kept across ticks so the hot
    /// loop refills it in place instead of allocating O(N) every tick.
    /// Only meaningful during a tick of a faulty episode.
    offline_buf: Vec<bool>,
}

/// Salt for the fault layer's RNG stream: the link must not replay the
/// workload generator's draws even though both derive from the same
/// per-episode seed (which the sweep planner offsets per plan position, so
/// fault sequences stay byte-identical at any thread count).
const FAULT_SEED_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

impl Simulation {
    /// Builds the world from `config`, registers the queries, and runs the
    /// protocol's init handshake (its traffic is charged like any other).
    ///
    /// When `config.fault` is a real plan, the protocol is told via
    /// [`Protocol::set_lossy`] before init, and [`VerifyMode::Assert`] is
    /// downgraded to [`VerifyMode::Record`] — under faults even a hardened
    /// exact method is transiently wrong, which is precisely what the
    /// recorded recall/staleness metrics measure. The init handshake itself
    /// always runs fault-free: query registration models a wired setup
    /// step, not mobile radio traffic.
    pub fn new(config: &SimConfig, mut proto: Box<dyn Protocol>) -> Self {
        let link = (!config.fault.is_none())
            .then(|| FaultyLink::new(config.fault, config.workload.seed ^ FAULT_SEED_SALT));
        let crashes = link
            .as_ref()
            .map(|l| l.crash_schedule(config.shards, config.ticks))
            .unwrap_or_default();
        if link.is_some() {
            proto.set_lossy(true);
        }
        let verify = if link.is_some() && config.verify == VerifyMode::Assert {
            VerifyMode::Record
        } else {
            config.verify
        };
        let world = config.workload.build();
        let bounds = world.bounds();
        let specs: Vec<QuerySpec> = config
            .focal_ids()
            .iter()
            .enumerate()
            .map(|(i, &focal)| QuerySpec {
                id: QueryId(i as u32),
                focal: ObjectId(focal),
                k: config.k,
            })
            .collect();
        // One bulk load instead of N upserts: identical structure (same
        // per-cell member order), no per-object reallocation churn.
        let infra =
            GridIndex::bulk_load(bounds, config.geo_cells, config.geo_cells, world.snapshot());
        let mut metrics = EpisodeMetrics {
            method: proto.name().to_string(),
            ticks: 0,
            n_objects: config.workload.n_objects,
            n_queries: config.n_queries,
            k: config.k,
            ..EpisodeMetrics::default()
        };
        let mut inboxes: Vec<Vec<DownlinkMsg>> = vec![Vec::new(); world.len()];

        // Shard tier: seed every ownership before any traffic flows (a
        // first sighting is registration, not a boundary crossing, so
        // nothing is charged here).
        let mut coord = ShardCoordinator::new(bounds, config.shards);
        for (i, &pos) in world.positions().iter().enumerate() {
            coord.track_object(
                ObjectId(i as u32),
                pos,
                world.velocities()[i],
                &mut metrics.net,
                None,
            );
        }
        for spec in &specs {
            let focal = world.position(spec.focal);
            coord.track_query(spec.id, focal, config.k, &mut metrics.net, None);
        }

        // Init handshake at tick 0.
        let mut outbox = Outbox::new();
        let mut ops = OpCounters::default();
        let t0 = Instant::now();
        let scoped = config.downlink == DownlinkMode::Scoped;
        let mut repl = ReplStore::new();
        let mut last_sent = vec![Vec::new(); specs.len()];
        let mut builder = scoped.then(|| repl.begin_tick(0));
        {
            let mut probe = EngineProbe {
                infra: &infra,
                world: &world,
                stats: &mut metrics.net,
                link: None,
                coord: &mut coord,
                builder: builder.as_mut(),
            };
            proto.init(
                bounds,
                &world.objects(),
                &specs,
                &mut probe,
                &mut outbox,
                &mut ops,
            );
        }
        // The init handshake is server-side setup work; the routing that
        // delivers its outbox is charged to the route split below. Both
        // feed `proto_seconds`, composed the same way as a stepped tick.
        let init_secs = t0.elapsed().as_secs_f64();
        metrics.server_seconds += init_secs;
        metrics.ops += ops;
        let t_route = Instant::now();
        {
            route(
                &outbox,
                &infra,
                &mut inboxes,
                &mut metrics.net,
                None,
                &mut coord,
                builder.as_mut(),
            );
            replicate_answers(
                proto.as_ref(),
                &specs,
                &mut last_sent,
                None,
                &mut metrics.net,
                builder.as_mut(),
            );
            if let Some(b) = builder {
                b.flush_frames(&mut metrics.net);
            }
        }
        let route_secs = t_route.elapsed().as_secs_f64();
        metrics.route_seconds += route_secs;
        metrics.proto_seconds += init_secs + route_secs;
        metrics.shard_load = coord.loads();

        let n_queries = specs.len();
        Simulation {
            world,
            proto,
            specs,
            infra,
            inboxes,
            verify,
            metrics,
            tick: 0,
            planned_ticks: config.ticks,
            series: None,
            link,
            coord,
            stale_streak: vec![0; n_queries],
            oracle_brute: std::env::var("MKNN_ORACLE").as_deref() == Ok("brute"),
            pool: match config.client_threads {
                Some(t) => mknn_util::Pool::new(t),
                None => mknn_util::Pool::from_env(),
            },
            repl,
            scoped,
            last_sent,
            crashes,
            offline_buf: Vec::new(),
        }
    }

    /// The episode's planned shard-crash windows (empty without a
    /// crash-scheduling fault plan). Tests and experiments read this to
    /// align reconvergence measurements with the rebirth ticks.
    pub fn crash_windows(&self) -> &[CrashWindow] {
        &self.crashes
    }

    /// Applies this tick's planned crash-window edges (DESIGN.md §11).
    ///
    /// Rebirths run first: a shard whose window ends this tick runs the
    /// counted state-reconstruction sweep — the coordinator delivers held
    /// `Handoff` legs, charges one `Recover` leg per surviving source
    /// shard, and re-homes the replayed objects — then the protocol is
    /// handed the replay so index-based methods re-learn the block.
    /// New crashes follow: the coordinator drops the shard's object homes
    /// and homed queries and fails routing over to the covering fallback,
    /// and the protocol wipes the matching per-query server state. Windows
    /// are normalized per shard, so the two edge kinds never collide on
    /// the same shard in one tick.
    fn apply_crash_transitions(&mut self) {
        for wi in 0..self.crashes.len() {
            let w = self.crashes[wi];
            if w.until != self.tick {
                continue;
            }
            let block = self.coord.block_of(w.shard);
            // The replay set is every object currently inside the reborn
            // block — exactly what the surviving shards (which adopted the
            // block's movers) plus the coordinator's durable registry (the
            // parked remainder) can reconstruct between them.
            let replay: Vec<ObjReport> = (0..self.world.len())
                .filter(|&i| block.contains(self.world.positions()[i]))
                .map(|i| ObjReport {
                    id: ObjectId(i as u32),
                    pos: self.world.positions()[i],
                    vel: self.world.velocities()[i],
                })
                .collect();
            self.coord
                .recover(w.shard, &replay, &mut self.metrics.net, self.link.as_mut());
            self.proto.server_recover(w.shard, block, &replay);
        }
        for wi in 0..self.crashes.len() {
            let w = self.crashes[wi];
            if w.from != self.tick {
                continue;
            }
            let wiped = self.coord.crash(w.shard);
            self.metrics.shard_crashes += 1;
            self.proto
                .server_crash(w.shard, self.coord.block_of(w.shard), &wiped);
        }
        let down_now = self
            .crashes
            .iter()
            .filter(|w| w.from <= self.tick && self.tick < w.until)
            .count() as u64;
        self.metrics.crash_down_ticks += down_now;
    }

    /// The tick's ground-truth oracle, honoring the `MKNN_ORACLE` override.
    fn build_oracle(&self) -> SnapshotOracle {
        if self.oracle_brute {
            SnapshotOracle::build_bruteforce(&self.world)
        } else {
            SnapshotOracle::build(&self.world)
        }
    }

    /// Turns on per-tick time-series recording (see [`crate::TickSeries`]).
    /// Call before stepping; recording an already-running episode starts
    /// from the current tick.
    pub fn record_series(&mut self) {
        if self.series.is_none() {
            self.series = Some(crate::TickSeries::new());
        }
    }

    /// The recorded time series, when [`Simulation::record_series`] was
    /// called.
    pub fn series(&self) -> Option<&crate::TickSeries> {
        self.series.as_ref()
    }

    /// The registered query specs.
    pub fn specs(&self) -> &[QuerySpec] {
        &self.specs
    }

    /// The maintained answer of `query` right now.
    pub fn answer(&self, query: QueryId) -> &[ObjectId] {
        self.proto.answer(query)
    }

    /// Immutable access to the ground-truth world.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Metrics accumulated so far.
    pub fn metrics(&self) -> &EpisodeMetrics {
        &self.metrics
    }

    /// Advances the episode by one tick.
    pub fn step(&mut self) {
        let before = self.series.is_some().then(|| self.metrics.clone());
        self.tick += 1;
        self.metrics.ticks = self.tick;
        self.world.step();
        // Dirty-only index maintenance: an unmoved object's upsert was a
        // same-cell no-op anyway, so touching only `world.moved()` leaves
        // the grid byte-identical while skipping the (1 - move_prob)·N
        // redundant hash-and-compare passes per tick.
        for &i in self.world.moved() {
            self.infra
                .upsert(ObjectId(i), self.world.positions()[i as usize]);
        }

        if let Some(link) = self.link.as_mut() {
            link.begin_tick(self.tick, self.world.len());
        }

        // Crash-window edges before any tracking: a shard reborn this tick
        // must finish its reconstruction sweep (and a newly dead one must
        // be failed over) before movement hands objects around.
        if !self.crashes.is_empty() {
            self.apply_crash_transitions();
        }

        // Shard tier: movement first. Block crossings hand the object off
        // to its new owner; a focal crossing migrates the query's state to
        // its new home shard (members = k entries). Unmoved objects are
        // skipped: same position ⇒ same block ⇒ `track_object` is a pure
        // no-op (velocity only matters in a Handoff, which needs a
        // crossing).
        for &i in self.world.moved() {
            self.coord.track_object(
                ObjectId(i),
                self.world.positions()[i as usize],
                self.world.velocities()[i as usize],
                &mut self.metrics.net,
                self.link.as_mut(),
            );
        }
        let k = self.metrics.k;
        for qi in 0..self.specs.len() {
            let spec = self.specs[qi];
            let focal = self.world.position(spec.focal);
            self.coord
                .track_query(spec.id, focal, k, &mut self.metrics.net, self.link.as_mut());
        }

        let mut ops = OpCounters::default();
        let mut uplinks = Uplinks::new();

        // Client phase: each device acts on its own state + inbox. An
        // offline device neither processes nor sends; the downlinks sitting
        // in its inbox (delivered while it was still reachable) are lost.
        // Drops are counted up front (a commuting tally, so the count is
        // identical to the old interleaved accounting), then the whole
        // phase dispatches through the protocol's chunked batch path.
        // The mask lives in a persistent buffer refilled in place — the
        // former per-tick Vec allocation was O(N) in the hot loop.
        let t_client = Instant::now();
        self.offline_buf.clear();
        let offline: Option<&[bool]> = match self.link.as_ref() {
            Some(link) => {
                self.offline_buf
                    .extend((0..self.world.len()).map(|i| link.is_offline(i)));
                Some(&self.offline_buf)
            }
            None => None,
        };
        if let Some(mask) = offline {
            for (i, inbox) in self.inboxes.iter_mut().enumerate() {
                if mask[i] {
                    for _ in inbox.drain(..) {
                        self.metrics.net.count_dropped();
                    }
                }
            }
        }
        let ctx = mknn_net::ClientCtx {
            tick: self.tick,
            pos: self.world.positions(),
            vel: self.world.velocities(),
            max_speed: self.world.max_speeds(),
            inboxes: &self.inboxes,
            offline,
            pool: self.pool,
        };
        self.proto.client_phase(&ctx, &mut uplinks, &mut ops);
        // Every inbox was consumed (or dropped) this tick; `route` refills
        // them below for the next one.
        for inbox in self.inboxes.iter_mut() {
            inbox.clear();
        }
        let client_secs = t_client.elapsed().as_secs_f64();

        // Route phase, uplink side.
        let t_route = Instant::now();
        // Every transmission is charged to the sender, delivered or not.
        for (_, msg) in uplinks.iter() {
            self.metrics.net.count_uplink(msg.kind(), msg.size_bytes());
        }
        // Uplink leg of the fault layer: delayed messages from earlier
        // ticks arrive first (already charged when sent), then this tick's
        // batch runs the loss/duplication/delay gauntlet.
        let uplinks = if let Some(link) = self.link.as_mut() {
            let mut delivered = Vec::new();
            link.drain_due_up(&mut delivered);
            for (from, msg) in uplinks.iter() {
                link.transmit_up(from, *msg, &mut delivered, &mut self.metrics.net);
            }
            let mut faulted = Uplinks::new();
            for (from, msg) in delivered {
                faulted.send(from, msg);
            }
            faulted
        } else {
            uplinks
        };
        // Every *delivered* uplink terminates at the shard owning the
        // sender's block and is forwarded when its query is homed elsewhere.
        // The terminal shard picks the server partition that consumes the
        // message, splitting the global stream into per-shard task inputs
        // (each shard sees its slice in global arrival order).
        let g = self.coord.count() as usize;
        let mut split: Vec<Uplinks> = (0..g).map(|_| Uplinks::new()).collect();
        for (from, msg) in uplinks.iter() {
            let dest = self.coord.route_uplink(
                msg.query(),
                self.world.position(from),
                msg.size_bytes(),
                &mut self.metrics.net,
                self.link.as_mut(),
            );
            split[dest as usize].send(from, *msg);
        }
        let mut route_secs = t_route.elapsed().as_secs_f64();

        // Server phase: one task per shard, dispatched over the pool. Each
        // task drives the shard's partition of the protocol's server state
        // through a read-only [`ShardProbe`]; the coordinator's charges and
        // the scoped builder's stagings are deferred into per-shard buffers
        // and replayed in ascending shard order below, so the episode's
        // metrics are byte-identical at any thread count.
        let t_server = Instant::now();
        let mut outbox = Outbox::new();
        let mut builder = self.scoped.then(|| self.repl.begin_tick(self.tick));
        let homes: Vec<u32> = self
            .specs
            .iter()
            .map(|s| self.coord.effective_home(s.id))
            .collect();
        let mut bufs: Vec<ShardBuf> = (0..g).map(|_| ShardBuf::default()).collect();
        if let Some(link) = self.link.as_mut() {
            // Each shard's task draws probe fates from its homed queries'
            // streams; moving the streams out (and back afterwards) keeps
            // every draw on the same per-query sequence as the monolith.
            let mut groups: Vec<Vec<u32>> = vec![Vec::new(); g];
            for (qi, &home) in homes.iter().enumerate() {
                groups[home as usize].push(qi as u32);
            }
            for (buf, streams) in bufs.iter_mut().zip(link.split_query_streams(&groups)) {
                buf.streams = Some(streams);
            }
        }
        let plan = self.link.as_ref().map(|l| *l.plan());
        let offline_mask: Option<&[bool]> = self.link.is_some().then_some(&self.offline_buf);
        let mut tasks: Vec<ShardTask> = Vec::with_capacity(g);
        for (shard, (buf, up)) in bufs.iter_mut().zip(split).enumerate() {
            tasks.push(ShardTask {
                shard: shard as u32,
                uplinks: up,
                probe: Box::new(ShardProbe {
                    infra: &self.infra,
                    pos: self.world.positions(),
                    vel: self.world.velocities(),
                    offline: offline_mask,
                    plan,
                    tick: self.tick,
                    scoped: self.scoped,
                    coord: &self.coord,
                    buf,
                }),
                outbox: Outbox::new(),
                ops: OpCounters::default(),
                seconds: 0.0,
            });
        }
        {
            let coord = &self.coord;
            let route_fn = move |p: Point| coord.effective_shard_of(p);
            let mut phase = ServerPhase {
                tick: self.tick,
                homes: &homes,
                route: &route_fn,
                pool: self.pool,
                tasks: &mut tasks,
            };
            self.proto.server_phase(&mut phase);
        }
        // Merge in ascending shard order: outbox concatenation, op totals,
        // and the per-shard wall-time breakdown.
        if self.metrics.shard_seconds.len() < g {
            self.metrics.shard_seconds.resize(g, 0.0);
        }
        for mut task in tasks {
            outbox.append(&mut task.outbox);
            ops += task.ops;
            self.metrics.shard_seconds[task.shard as usize] += task.seconds;
        }
        // Replay each shard's deferred side effects against the real
        // coordinator/link/builder, ascending — deterministic regardless of
        // which worker ran which task when.
        for buf in bufs.iter_mut() {
            self.metrics.net += &buf.stats;
            for charge in buf.charges.drain(..) {
                match charge {
                    CoordCharge::ProbeScatter { query, zone } => {
                        self.coord.probe_scatter(
                            query,
                            &zone,
                            &mut self.metrics.net,
                            self.link.as_mut(),
                        );
                    }
                    CoordCharge::ProbeGather {
                        query,
                        shard,
                        count,
                    } => {
                        self.coord.probe_gather(
                            query,
                            shard,
                            count,
                            &mut self.metrics.net,
                            self.link.as_mut(),
                        );
                    }
                    CoordCharge::RouteUnicast { query, pos, bytes } => {
                        self.coord.route_unicast(
                            query,
                            pos,
                            bytes,
                            &mut self.metrics.net,
                            self.link.as_mut(),
                        );
                    }
                    CoordCharge::RouteUplink { query, pos, bytes } => {
                        self.coord.route_uplink(
                            Some(query),
                            pos,
                            bytes,
                            &mut self.metrics.net,
                            self.link.as_mut(),
                        );
                    }
                }
            }
            if let Some(b) = builder.as_mut() {
                for (to, msg, delivery) in buf.staged.drain(..) {
                    b.stage(to, msg, delivery);
                }
            }
        }
        if let Some(link) = self.link.as_mut() {
            link.restore_query_streams(bufs.into_iter().filter_map(|b| b.streams).collect());
        }
        let server_secs = t_server.elapsed().as_secs_f64();
        self.metrics.ops += ops;

        // Route phase, downlink side.
        let t_route = Instant::now();
        {
            route(
                &outbox,
                &self.infra,
                &mut self.inboxes,
                &mut self.metrics.net,
                self.link.as_mut(),
                &mut self.coord,
                builder.as_mut(),
            );
            // Answer replication rides the same tick's frames: the focal
            // device of every query whose answer changed since its last
            // push receives the new list (whole in legacy mode, as a diff
            // against its acked copy in scoped mode).
            replicate_answers(
                self.proto.as_ref(),
                &self.specs,
                &mut self.last_sent,
                self.link.as_ref(),
                &mut self.metrics.net,
                builder.as_mut(),
            );
            if let Some(b) = builder {
                b.flush_frames(&mut self.metrics.net);
            }
        }
        route_secs += t_route.elapsed().as_secs_f64();
        self.metrics.client_seconds += client_secs;
        self.metrics.server_seconds += server_secs;
        self.metrics.route_seconds += route_secs;
        self.metrics.proto_seconds += client_secs + server_secs + route_secs;
        self.metrics.shard_load = self.coord.loads();

        if self.verify != VerifyMode::Off {
            self.verify_answers();
        }

        if let (Some(series), Some(before)) = (self.series.as_mut(), before) {
            series.push(crate::delta_sample(self.tick, &before, &self.metrics));
        }
    }

    fn verify_answers(&mut self) {
        let t0 = Instant::now();
        // One snapshot index answers all Q×2 oracle kNN queries of this
        // tick — O(N log N + Q·k·log N) instead of the former O(N·Q).
        let oracle = self.build_oracle();
        for (qi, spec) in self.specs.iter().enumerate() {
            let answer = self.proto.answer(spec.id);
            let true_center = self.world.position(spec.focal);
            let effective = self.proto.effective_center(spec.id).unwrap_or(true_center);
            let ck = check_answer(
                &self.world,
                &oracle,
                spec.focal,
                spec.k,
                answer,
                effective,
                true_center,
                self.proto.ordered_answers(),
            );
            self.metrics.exact_checks += 1;
            self.metrics.exact_ok += u64::from(ck.exact);
            self.metrics.recall_sum += ck.recall_vs_true;
            self.metrics.dist_error_sum += ck.dist_error;
            // Staleness is a *fault* metric: how long a lost message keeps
            // an answer wrong. On a perfect link an inexact method (e.g.
            // `periodic`) is approximate by design, not stale, and charging
            // it here would perturb the fault-free golden output.
            if self.link.is_some() {
                if ck.exact {
                    self.stale_streak[qi] = 0;
                } else {
                    self.stale_streak[qi] += 1;
                    self.metrics.staleness_sum += self.stale_streak[qi];
                    self.metrics.max_staleness =
                        self.metrics.max_staleness.max(self.stale_streak[qi]);
                }
            }
            if self.verify == VerifyMode::Assert && self.proto.guarantees_exact() && !ck.exact {
                let truth: Vec<_> = oracle
                    .knn_excluding(effective, spec.k, spec.focal)
                    .iter()
                    .map(|n| (n.id, n.dist()))
                    .collect();
                panic!(
                    "{}: inexact answer for {} at tick {}: got {:?}, oracle {:?} (effective {:?})",
                    self.proto.name(),
                    spec.id,
                    self.tick,
                    answer,
                    truth,
                    effective,
                );
            }
        }
        self.metrics.oracle_seconds += t0.elapsed().as_secs_f64();
    }

    /// Number of queries whose *current* maintained answer is not exact
    /// with respect to the method's effective center. Non-mutating; used by
    /// the chaos suite to assert reconvergence after a fault burst.
    pub fn inexact_queries(&self) -> usize {
        let oracle = self.build_oracle();
        self.specs
            .iter()
            .filter(|spec| {
                let true_center = self.world.position(spec.focal);
                let effective = self.proto.effective_center(spec.id).unwrap_or(true_center);
                !check_answer(
                    &self.world,
                    &oracle,
                    spec.focal,
                    spec.k,
                    self.proto.answer(spec.id),
                    effective,
                    true_center,
                    self.proto.ordered_answers(),
                )
                .exact
            })
            .count()
    }

    /// Runs the configured number of ticks and returns the final metrics.
    pub fn run(mut self) -> EpisodeMetrics {
        for _ in 0..self.planned_ticks {
            self.step();
        }
        self.metrics
    }
}

/// Answer replication (DESIGN.md §10): pushes each query's current answer
/// to its focal device whenever it differs from what was last pushed.
///
/// Like probes, answer pushes are harness-level accounting traffic — they
/// never enter an inbox and never consume fault-layer RNG, so legacy and
/// scoped episodes stay draw-for-draw identical. In legacy mode each push
/// is a unicast carrying the full member list; in scoped mode the logical
/// unicast is still counted (so message tallies match across modes) but the
/// bytes ride the tick's frame as a delta against the focal's acked copy.
/// The delivery outcome feeding the ack machine is churn-only (an offline
/// focal gaps), deterministic in both modes.
fn replicate_answers(
    proto: &dyn Protocol,
    specs: &[QuerySpec],
    last_sent: &mut [Vec<ObjectId>],
    link: Option<&FaultyLink>,
    stats: &mut NetStats,
    mut builder: Option<&mut DownlinkBuilder>,
) {
    let ordered = proto.ordered_answers();
    for (qi, spec) in specs.iter().enumerate() {
        let mut members = proto.answer(spec.id).to_vec();
        if !ordered {
            members.sort_unstable_by_key(|m| m.0);
        }
        if members == last_sent[qi] {
            continue;
        }
        match builder.as_deref_mut() {
            Some(b) => {
                stats.count_unicast(MsgKind::AnswerPush, 0);
                let delivery = if link.is_none_or(|l| !l.is_offline(spec.focal.index())) {
                    Delivery::Delivered
                } else {
                    Delivery::Offline
                };
                b.stage_answer(spec.focal, spec.id, members.clone(), ordered, delivery);
            }
            None => {
                let push = AnswerUpdate::Full {
                    query: spec.id,
                    members: members.clone(),
                };
                let bytes = (LINK_HEADER_BITS + push.wire_bits()).div_ceil(8);
                stats.count_unicast(MsgKind::AnswerPush, bytes);
            }
        }
        last_sent[qi] = members;
    }
}

/// One downlink delivery through the (possibly faulty) link, reporting
/// whether a copy reached the inbox this tick.
fn deliver_one(
    to: ObjectId,
    msg: &DownlinkMsg,
    inboxes: &mut [Vec<DownlinkMsg>],
    stats: &mut NetStats,
    link: Option<&mut FaultyLink>,
) -> bool {
    if let Some(link) = link {
        link.deliver_down(to.index(), *msg, inboxes, stats)
    } else if let Some(inbox) = inboxes.get_mut(to.index()) {
        inbox.push(*msg);
        true
    } else {
        false
    }
}

/// Classifies a delivery outcome for the ack state machine: an undelivered
/// copy to an offline device is a churn gap (full snapshots on rejoin),
/// an undelivered copy to an online device is plain loss/delay (the acked
/// baseline just stalls).
fn delivery_of(delivered: bool, to: ObjectId, link: Option<&FaultyLink>) -> Delivery {
    if delivered {
        Delivery::Delivered
    } else if link.is_some_and(|l| l.is_offline(to.index())) {
        Delivery::Offline
    } else {
        Delivery::Lost
    }
}

/// Routes an outbox: charges every transmission and fills device inboxes.
/// With a fault layer, due delayed downlinks are delivered first, then
/// every individual delivery (one per geocast/broadcast receiver) makes its
/// own fault draws, in deterministic recipient order.
///
/// With a [`DownlinkBuilder`] (scoped mode), deliveries are *identical* —
/// same inboxes, same fault draws, same order — but bytes are not charged
/// per message: each delivery is staged on the builder, which the caller
/// flushes into per-device frames. Logical message counts (unicast,
/// geocast-cell, per-kind) are charged the same in both modes. Broadcasts
/// have no interest set and always use the legacy model.
fn route(
    outbox: &Outbox,
    infra: &GridIndex,
    inboxes: &mut [Vec<DownlinkMsg>],
    stats: &mut NetStats,
    mut link: Option<&mut FaultyLink>,
    coord: &mut ShardCoordinator,
    mut builder: Option<&mut DownlinkBuilder>,
) {
    if let Some(link) = link.as_deref_mut() {
        link.drain_due_down(inboxes, stats);
    }
    for (recipient, msg) in outbox.iter() {
        match *recipient {
            Recipient::One(id) => {
                let bytes = if builder.is_some() {
                    0
                } else {
                    msg.size_bytes()
                };
                stats.count_unicast(msg.kind(), bytes);
                // A unicast into a foreign shard's block is forwarded there
                // over the backbone. Recipients the infrastructure does not
                // track have no block, hence no shard leg.
                if let Some(pos) = infra.position(id) {
                    coord.route_unicast(
                        msg.query(),
                        pos,
                        msg.size_bytes(),
                        stats,
                        link.as_deref_mut(),
                    );
                }
                let delivered = deliver_one(id, msg, inboxes, stats, link.as_deref_mut());
                if let Some(b) = builder.as_deref_mut() {
                    // Recipients without an inbox have no device to frame
                    // to (the logical charge above still stands).
                    if id.index() < inboxes.len() {
                        b.stage(id, *msg, delivery_of(delivered, id, link.as_deref()));
                    }
                }
            }
            Recipient::Geocast(zone) => {
                let cells = infra.cells_overlapping(&zone);
                let bytes = if builder.is_some() {
                    0
                } else {
                    msg.size_bytes()
                };
                stats.count_geocast(msg.kind(), bytes, cells);
                coord.route_geocast(msg.query(), &zone, stats, link.as_deref_mut());
                if let Some(b) = builder.as_deref_mut() {
                    // Scope pass: the devices interested in this send are
                    // exactly the zone's members (region members and
                    // imminent entrants), in the same deterministic order
                    // the legacy loop delivers in.
                    let interest = DownlinkBuilder::scope(recipient, |z| {
                        infra.range(z).into_iter().map(|n| n.id).collect()
                    })
                    .expect("geocasts always have an interest set");
                    for id in interest {
                        let delivered = deliver_one(id, msg, inboxes, stats, link.as_deref_mut());
                        if id.index() < inboxes.len() {
                            b.stage(id, *msg, delivery_of(delivered, id, link.as_deref()));
                        }
                    }
                } else if let Some(link) = link.as_deref_mut() {
                    for n in infra.range(&zone) {
                        link.deliver_down(n.id.index(), *msg, inboxes, stats);
                    }
                } else {
                    for n in infra.range(&zone) {
                        // Tolerant like the unicast arm: a recipient id the
                        // engine has no inbox for (e.g. an index entry for a
                        // device outside the episode population) is skipped,
                        // not a panic.
                        if let Some(inbox) = inboxes.get_mut(n.id.index()) {
                            inbox.push(*msg);
                        }
                    }
                }
            }
            Recipient::Broadcast => {
                stats.count_broadcast(msg.kind(), msg.size_bytes());
                coord.route_broadcast(msg.query(), stats, link.as_deref_mut());
                if let Some(link) = link.as_deref_mut() {
                    for i in 0..inboxes.len() {
                        link.deliver_down(i, *msg, inboxes, stats);
                    }
                } else {
                    for inbox in inboxes.iter_mut() {
                        inbox.push(*msg);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mknn_baselines::Centralized;
    use mknn_core::{Dknn, DknnParams};

    #[test]
    fn centralized_runs_exactly() {
        let cfg = SimConfig::small();
        let sim = Simulation::new(&cfg, Box::new(Centralized::new(16)));
        let m = sim.run();
        assert_eq!(m.exactness(), 1.0);
        assert_eq!(m.recall(), 1.0);
        // The firehose: roughly one uplink per moving object per tick.
        assert!(m.uplink_per_tick() > cfg.workload.n_objects as f64 * 0.5);
    }

    #[test]
    fn dknn_set_is_exact_and_cheaper() {
        let cfg = SimConfig::small();
        let params = DknnParams {
            v_max_obj: 20.0,
            v_max_q: 20.0,
            ..DknnParams::default()
        };
        let m = Simulation::new(&cfg, Box::new(Dknn::set(params))).run();
        assert_eq!(m.exactness(), 1.0, "set protocol must be exact: {m:?}");
        let c = Simulation::new(&cfg, Box::new(Centralized::new(16))).run();
        assert!(
            m.net.uplink_msgs < c.net.uplink_msgs,
            "distributed uplink {} should undercut centralized {}",
            m.net.uplink_msgs,
            c.net.uplink_msgs
        );
    }

    #[test]
    fn dknn_ordered_is_exact() {
        let cfg = SimConfig::small();
        let m = Simulation::new(&cfg, Box::new(Dknn::ordered(DknnParams::default()))).run();
        assert_eq!(m.exactness(), 1.0, "{m:?}");
    }

    #[test]
    fn dknn_buffered_is_exact() {
        let cfg = SimConfig::small();
        let m = Simulation::new(
            &cfg,
            Box::new(mknn_core::DknnBuffered::new(DknnParams::default(), 4)),
        )
        .run();
        assert_eq!(m.exactness(), 1.0, "{m:?}");
    }

    #[test]
    fn series_recording_matches_totals() {
        let cfg = SimConfig::small();
        let mut sim = Simulation::new(&cfg, Box::new(Dknn::set(DknnParams::default())));
        sim.record_series();
        for _ in 0..cfg.ticks {
            sim.step();
        }
        let series = sim.series().unwrap();
        assert_eq!(series.len(), cfg.ticks as usize);
        // Per-tick deltas must sum back to the episode totals minus the
        // init traffic (recording starts after init).
        let up_sum: u64 = series.samples().iter().map(|s| s.uplink).sum();
        assert_eq!(up_sum, sim.metrics().net.uplink_msgs);
        let checked: u64 = series.samples().iter().map(|s| s.checked_queries).sum();
        assert_eq!(checked, sim.metrics().exact_checks);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let cfg = SimConfig::small();
        let a = Simulation::new(&cfg, Box::new(Dknn::set(DknnParams::default()))).run();
        let b = Simulation::new(&cfg, Box::new(Dknn::set(DknnParams::default()))).run();
        assert_eq!(a.net, b.net);
        assert_eq!(a.ops, b.ops);
    }

    #[test]
    fn poll_answers_none_for_ids_the_world_does_not_track() {
        let cfg = SimConfig::small();
        let world = cfg.workload.build();
        let infra = GridIndex::bulk_load(
            world.bounds(),
            cfg.geo_cells,
            cfg.geo_cells,
            world.snapshot(),
        );
        let n = world.len() as u32;
        let mut stats = NetStats::default();
        let mut coord = ShardCoordinator::new(world.bounds(), 1);
        let mut probe = EngineProbe {
            infra: &infra,
            world: &world,
            stats: &mut stats,
            link: None,
            coord: &mut coord,
            builder: None,
        };
        // Beyond the population: no such device, no traffic charged.
        assert_eq!(probe.poll(QueryId(0), ObjectId(n)), None);
        assert_eq!(probe.poll(QueryId(0), ObjectId(n + 5)), None);
        assert_eq!(probe.stats.total_msgs(), 0);
        // A tracked id answers, is charged, and reports its own identity.
        let rep = probe.poll(QueryId(0), ObjectId(3)).expect("tracked id");
        assert_eq!(rep.id, ObjectId(3));
        assert_eq!(probe.stats.downlink_unicast_msgs, 1);
        assert_eq!(probe.stats.uplink_msgs, 1);
    }

    #[test]
    fn route_skips_unknown_recipients_in_every_arm() {
        use mknn_geom::{Circle, Point, Rect};
        let mut infra = GridIndex::new(Rect::square(100.0), 4, 4);
        infra.upsert(ObjectId(0), Point::new(10.0, 10.0));
        // Indexed, but beyond the engine's inbox range: before the fix the
        // unicast arm skipped it silently while the geocast arm panicked.
        infra.upsert(ObjectId(9), Point::new(12.0, 12.0));
        let mut inboxes = vec![Vec::new(); 2];
        let msg = DownlinkMsg::RemoveRegion { query: QueryId(0) };
        let mut outbox = Outbox::new();
        outbox.send(Recipient::One(ObjectId(9)), msg);
        outbox.send(
            Recipient::Geocast(Circle::new(Point::new(11.0, 11.0), 50.0)),
            msg,
        );
        outbox.send(Recipient::Broadcast, msg);
        let mut stats = NetStats::default();
        let mut coord = ShardCoordinator::new(Rect::square(100.0), 1);
        route(
            &outbox,
            &infra,
            &mut inboxes,
            &mut stats,
            None,
            &mut coord,
            None,
        );
        // Device 0: hears the geocast and the broadcast. Device 1: only the
        // broadcast (it is not in the grid). Id 9: dropped in every arm.
        assert_eq!(inboxes[0].len(), 2);
        assert_eq!(inboxes[1].len(), 1);
    }

    #[test]
    fn sharded_episode_keeps_answers_and_device_traffic_identical() {
        let cfg = SimConfig::small();
        let single = Simulation::new(&cfg, Box::new(Dknn::set(DknnParams::default()))).run();
        let sharded_cfg = SimConfig { shards: 4, ..cfg };
        let sharded =
            Simulation::new(&sharded_cfg, Box::new(Dknn::set(DknnParams::default()))).run();
        // Device-facing traffic and answer quality are untouched by the
        // overlay; only the shard ledger differs.
        let mut device_view = sharded.clone();
        device_view.net.shard = Default::default();
        device_view.shard_load = single.shard_load.clone();
        assert_eq!(
            device_view.with_clock_zeroed(),
            single.clone().with_clock_zeroed()
        );
        assert_eq!(sharded.shard_load.len(), 4);
        assert!(sharded.net.shard.total_msgs() > 0, "cross-shard legs flow");
        assert!(
            sharded.net.shard.handoff_msgs > 0,
            "objects cross blocks in 60 ticks: {:?}",
            sharded.net.shard
        );
        assert_eq!(
            sharded.net.shard.retransmits, 0,
            "perfect backbone never retransmits"
        );
        // Load conservation: the single server processes everything.
        assert_eq!(single.shard_load.len(), 1);
    }

    #[test]
    fn faulty_episodes_are_deterministic_and_record_fault_traffic() {
        let cfg = SimConfig {
            fault: mknn_net::FaultPlan::chaos(),
            ..SimConfig::small()
        };
        // small() uses Assert, which the harness must downgrade under
        // faults instead of panicking on the first transient inexactness.
        let a = Simulation::new(&cfg, Box::new(Dknn::set(DknnParams::default()))).run();
        let b = Simulation::new(&cfg, Box::new(Dknn::set(DknnParams::default()))).run();
        assert_eq!(a.net, b.net);
        assert_eq!(a.ops, b.ops);
        assert_eq!(a.exact_ok, b.exact_ok);
        assert!(a.net.dropped_msgs > 0, "chaos must actually drop: {a:?}");
        assert!(a.exact_checks > 0);
    }
}
