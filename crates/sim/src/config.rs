//! Simulation episode configuration.

use mknn_core::DknnParams;
use mknn_mobility::WorkloadSpec;
use mknn_net::FaultPlan;

/// How strictly the oracle verifies maintained answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyMode {
    /// No verification (fast; for large sweeps where correctness has been
    /// established separately).
    Off,
    /// Verify every query every tick and *record* the outcome in the
    /// metrics.
    Record,
    /// Like `Record`, but panic on the first exactness violation of a
    /// method that [`mknn_net::Protocol::guarantees_exact`]. Used by tests.
    Assert,
}

/// How the harness models server → device transmissions (DESIGN.md §10).
///
/// Either way the protocol's messages reach the same inboxes through the
/// same fault draws — answers are byte-identical between the modes. Only
/// the byte accounting differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DownlinkMode {
    /// Interest-scoped replication (the default): all messages to one
    /// device in a tick coalesce into one bit-packed frame, each encoded as
    /// a delta against the state that device last acked, with full
    /// snapshots on first contact and after ack gaps. Broadcasts (the naive
    /// baseline's channel) have no interest set and stay on the legacy
    /// model.
    #[default]
    Scoped,
    /// The historical model: every unicast/geocast carries a full message
    /// encoding, charged per transmission (geocasts once per overlapped
    /// cell).
    Legacy,
}

/// Everything that defines one simulation episode.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// The moving-object workload.
    pub workload: WorkloadSpec,
    /// Number of registered MkNN queries. Focal objects are spread evenly
    /// over the object id space.
    pub n_queries: usize,
    /// Neighbors per query.
    pub k: usize,
    /// Episode length in ticks.
    pub ticks: u64,
    /// Infrastructure paging grid (geocast fan-out accounting): a geocast
    /// is charged once per grid cell its zone overlaps.
    pub geo_cells: u32,
    /// Oracle verification mode.
    pub verify: VerifyMode,
    /// Transport fault injection for the episode. [`FaultPlan::none`] (the
    /// default) keeps the perfect link and is byte-identical — in traffic,
    /// metrics and serialized form — to configurations written before the
    /// fault layer existed.
    pub fault: FaultPlan,
    /// Number of grid-partitioned server shards (DESIGN.md §9). Sharding is
    /// an accounting overlay: answers and device-side traffic are
    /// byte-identical for every value; only the separately-tallied
    /// inter-shard overhead and per-shard load vary. `1` (the default) is
    /// the single-server deployment and serializes identically to
    /// configurations written before the shard tier existed.
    pub shards: u32,
    /// Worker threads for the *intra-episode* client phase (DESIGN.md §5.2).
    /// `None` (the default) resolves from `MKNN_THREADS` like everything
    /// else; an explicit value pins the episode's pool regardless of the
    /// environment, which the tick benchmark uses to sweep thread counts
    /// in one process. Metrics are byte-identical at every value, so this
    /// knob is absent from the serialized form when unset.
    pub client_threads: Option<usize>,
    /// Downlink byte-accounting model. [`DownlinkMode::Scoped`] (the
    /// default) is absent from the serialized form; answers are identical
    /// in both modes, so this only moves the byte counters.
    pub downlink: DownlinkMode,
}

/// A structurally invalid [`SimConfig`], detected before an episode runs.
///
/// These are the malformed-input shapes reachable from the `expt` CLI that
/// used to die deep inside episode setup (an index panic for an empty
/// population, a grid assertion for a zero-area space); validating up
/// front turns them into typed, printable errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `n_objects == 0`: queries need focal objects to exist.
    EmptyPopulation,
    /// `space_side` is not a positive finite number: every spatial
    /// structure (grid index, shard grid, geocast paging) needs area.
    DegenerateSpace(f64),
    /// `client_threads == Some(0)`: a pool cannot have zero workers (unset
    /// means "from the environment", which is the way to not choose).
    ZeroClientThreads,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::EmptyPopulation => {
                write!(f, "n_objects must be >= 1 (queries need focal objects)")
            }
            ConfigError::DegenerateSpace(side) => {
                write!(f, "space_side must be positive and finite, got {side}")
            }
            ConfigError::ZeroClientThreads => {
                write!(
                    f,
                    "client_threads must be >= 1 when set (unset = from MKNN_THREADS)"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            workload: WorkloadSpec::default(),
            n_queries: 100,
            k: 10,
            ticks: 200,
            geo_cells: 64,
            verify: VerifyMode::Record,
            fault: FaultPlan::none(),
            shards: 1,
            client_threads: None,
            downlink: DownlinkMode::Scoped,
        }
    }
}

impl SimConfig {
    /// A small configuration for unit/integration tests: quick, but large
    /// enough to exercise every protocol path.
    pub fn small() -> Self {
        SimConfig {
            workload: WorkloadSpec {
                n_objects: 400,
                space_side: 1_000.0,
                ..WorkloadSpec::default()
            },
            n_queries: 5,
            k: 4,
            ticks: 60,
            geo_cells: 16,
            verify: VerifyMode::Assert,
            fault: FaultPlan::none(),
            shards: 1,
            client_threads: None,
            downlink: DownlinkMode::Scoped,
        }
    }

    /// Checks the structural invariants episode setup assumes, returning
    /// the first violation as a typed error. The `expt` CLI runs this on
    /// every user-assembled configuration before building a world.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.workload.n_objects == 0 {
            return Err(ConfigError::EmptyPopulation);
        }
        let side = self.workload.space_side;
        if !(side.is_finite() && side > 0.0) {
            return Err(ConfigError::DegenerateSpace(side));
        }
        if self.client_threads == Some(0) {
            return Err(ConfigError::ZeroClientThreads);
        }
        Ok(())
    }

    /// DKNN parameters sized for this workload's speed bounds (the
    /// protocol's soundness inputs come from the registration contract, so
    /// experiments derive them from the workload spec).
    ///
    /// Built through the validating [`DknnParams::builder`]; a frozen
    /// workload (max speed 0) falls back to the default drift threshold so
    /// the derived parameters are always valid.
    pub fn dknn_params(&self) -> DknnParams {
        let v = self.workload.speeds.max_speed();
        let drift = if v > 0.0 {
            2.0 * v
        } else {
            DknnParams::default().query_drift
        };
        DknnParams::builder()
            .speed_bounds(v)
            .query_drift(drift)
            .build()
            .expect("workload-derived parameters are in range by construction")
    }

    /// The focal object ids for the configured query count, spread evenly
    /// across the population.
    pub fn focal_ids(&self) -> Vec<u32> {
        let n = self.workload.n_objects.max(1);
        let q = self.n_queries;
        (0..q)
            .map(|i| ((i * n) / q.max(1)) as u32 % n as u32)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn focal_ids_are_spread_and_unique_when_possible() {
        let cfg = SimConfig {
            n_queries: 10,
            workload: WorkloadSpec {
                n_objects: 1000,
                ..WorkloadSpec::default()
            },
            ..SimConfig::default()
        };
        let ids = cfg.focal_ids();
        assert_eq!(ids.len(), 10);
        let mut sorted = ids.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
        assert_eq!(ids[0], 0);
        assert_eq!(ids[5], 500);
    }

    #[test]
    fn validate_catches_the_panicky_input_shapes() {
        let mut cfg = SimConfig::small();
        assert_eq!(cfg.validate(), Ok(()));
        cfg.workload.n_objects = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::EmptyPopulation));
        cfg.workload.n_objects = 10;
        for side in [0.0, -5.0, f64::NAN, f64::INFINITY] {
            cfg.workload.space_side = side;
            assert!(
                matches!(cfg.validate(), Err(ConfigError::DegenerateSpace(_))),
                "side={side}"
            );
        }
        cfg.workload.space_side = 100.0;
        cfg.client_threads = Some(0);
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroClientThreads));
        cfg.client_threads = Some(8);
        assert_eq!(cfg.validate(), Ok(()));
        // Errors print as actionable one-liners.
        assert!(ConfigError::EmptyPopulation
            .to_string()
            .contains("n_objects"));
    }

    #[test]
    fn client_threads_stays_out_of_the_serialized_form_when_unset() {
        let cfg = SimConfig::default();
        let s = mknn_util::to_string(&cfg);
        assert!(!s.contains("client_threads"), "got: {s}");
        let pinned = SimConfig {
            client_threads: Some(8),
            ..SimConfig::default()
        };
        let s = mknn_util::to_string(&pinned);
        assert!(s.contains("\"client_threads\""), "got: {s}");
        let back: SimConfig = mknn_util::from_str(&s).unwrap();
        assert_eq!(pinned, back);
    }

    #[test]
    fn config_round_trips_json() {
        let cfg = SimConfig::default();
        let s = mknn_util::to_string(&cfg);
        assert!(
            !s.contains("\"fault\""),
            "no-fault config hides the key: {s}"
        );
        let back: SimConfig = mknn_util::from_str(&s).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn faulty_config_round_trips_json() {
        let cfg = SimConfig {
            fault: FaultPlan::chaos(),
            ..SimConfig::default()
        };
        let s = mknn_util::to_string(&cfg);
        assert!(s.contains("\"fault\""), "got: {s}");
        let back: SimConfig = mknn_util::from_str(&s).unwrap();
        assert_eq!(cfg, back);
    }
}
