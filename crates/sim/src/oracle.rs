//! Oracle verification of maintained answers.
//!
//! Ground truth is defined by `mknn_index::bruteforce`, but computing it
//! that way costs `O(N)` per query per center — two full passes per check,
//! which at suite scale (N = 50k–100k, Q = 100, T = 200) made *verification*
//! dominate experiment wall time. Instead, the engine bulk-builds one
//! [`SnapshotOracle`] per verified tick and answers every oracle kNN query
//! of that tick from it: an `O(N)` bulk load of a population-scaled uniform
//! grid, then near-constant expected time per query. The indexed results
//! are byte-identical to brute force — same neighbors, same `total_cmp`/id
//! tie behavior — which the `oracle_props` property suite and the
//! `MKNN_ORACLE=brute` equivalence gate in `scripts/verify.sh` enforce.

use mknn_geom::{ObjectId, Point};
use mknn_index::{bruteforce, GridIndex, Neighbor};
use mknn_mobility::World;

/// Distance tolerance for tie handling: answers that differ from the oracle
/// only in members at (floating-point-)equal distance are considered exact,
/// because no geometric protocol can distinguish exact ties.
const TIE_EPS: f64 = 1e-9;

/// Upper clamp for [`AnswerCheck::dist_error`]: one full relative unit
/// (the answered total distance is at least twice the optimum). An answer
/// that is *missing* members scores exactly this clamp — a member the user
/// never received is infinitely far away, so a method returning nothing
/// must look maximally bad, not distance-perfect.
pub const DIST_ERROR_MAX: f64 = 1.0;

/// One tick's ground truth: a kNN oracle over a frozen world snapshot.
///
/// Built once per verified tick and shared across all queries of that tick.
/// Focal exclusion is handled by over-fetching `k + 1` neighbors and
/// filtering, which is exactly equivalent to brute force over the filtered
/// population (the `k + 1` nearest overall contain the `k` nearest
/// non-focal ones whether or not the focal is among them).
pub struct SnapshotOracle {
    backend: Backend,
}

enum Backend {
    /// The fast path: a uniform grid bulk-loaded over the snapshot
    /// (`O(N)` build — cheaper than an `O(N log N)` tree sort, which at
    /// suite scale would itself dominate the verification budget).
    Indexed(GridIndex),
    /// The `O(N)`-per-query reference scan, kept selectable (via
    /// `MKNN_ORACLE=brute`) so the equivalence and speedup gates can run
    /// both implementations against each other.
    Brute(Vec<(ObjectId, Point)>),
}

impl SnapshotOracle {
    /// Builds the indexed oracle over the world's current positions.
    ///
    /// Resolution targets a small constant number of objects per cell, so
    /// a kNN query inspects O(k) candidates in expectation regardless of
    /// population.
    pub fn build(world: &World) -> Self {
        let n = world.len();
        let side = (((n as f64) / 4.0).sqrt().ceil() as u32).clamp(1, 512);
        SnapshotOracle {
            backend: Backend::Indexed(GridIndex::bulk_load(
                world.bounds(),
                side,
                side,
                world.snapshot(),
            )),
        }
    }

    /// Builds the brute-force reference oracle over the same snapshot.
    pub fn build_bruteforce(world: &World) -> Self {
        SnapshotOracle {
            backend: Backend::Brute(world.snapshot().collect()),
        }
    }

    /// The k nearest objects to `center`, excluding `exclude` (the focal
    /// object, which is never its own neighbor), in canonical order
    /// (ascending `(distance², id)`).
    pub fn knn_excluding(&self, center: Point, k: usize, exclude: ObjectId) -> Vec<Neighbor> {
        match &self.backend {
            Backend::Indexed(grid) => {
                let mut nn = grid.knn(center, k.saturating_add(1));
                nn.retain(|n| n.id != exclude);
                nn.truncate(k);
                nn
            }
            Backend::Brute(points) => bruteforce::knn(
                points.iter().copied().filter(|&(id, _)| id != exclude),
                center,
                k,
            ),
        }
    }
}

/// Result of checking one query's answer at one tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnswerCheck {
    /// The maintained answer is an exact kNN (set- or order-wise, per the
    /// method's semantics) at the *effective* query center.
    pub exact: bool,
    /// Overlap with the true-position kNN set, in `[0, 1]` — the accuracy
    /// experiments' headline number (1.0 means the answer is also perfect
    /// with respect to the focal object's true position).
    pub recall_vs_true: f64,
    /// Relative distance error vs. the true kNN: `(Σ d_answer / Σ d_true) − 1`,
    /// clamped into `[0, DIST_ERROR_MAX]`. Zero when the answer is
    /// distance-optimal; the max when members are missing entirely.
    pub dist_error: f64,
}

/// Verifies `answer` for a query with focal `focal` and parameter `k`,
/// consulting `oracle` (built over `world`'s current snapshot) for ground
/// truth.
///
/// `effective` is the query point the method claims exactness for;
/// `true_center` is the focal object's true position. `ordered` selects
/// sequence (vs. set) comparison.
#[allow(clippy::too_many_arguments)]
pub fn check_answer(
    world: &World,
    oracle: &SnapshotOracle,
    focal: ObjectId,
    k: usize,
    answer: &[ObjectId],
    effective: Point,
    true_center: Point,
    ordered: bool,
) -> AnswerCheck {
    // --- exactness at the effective center -------------------------------
    let truth_eff = oracle.knn_excluding(effective, k, focal);
    let exact = if answer.len() != truth_eff.len() {
        false
    } else {
        let d_of = |id: ObjectId| world.position(id).dist(effective);
        let d_k = truth_eff.last().map_or(0.0, |n| n.dist());
        // Every answered member must be at least as close as the k-th oracle
        // distance (ties allowed)…
        let members_ok = answer.iter().all(|&id| d_of(id) <= d_k + TIE_EPS);
        // …and in ordered mode the reported sequence must be non-decreasing.
        let order_ok = !ordered
            || answer
                .windows(2)
                .all(|w| d_of(w[0]) <= d_of(w[1]) + TIE_EPS);
        // Distance multisets must agree (catches wrong members hiding
        // behind an equal count).
        let mut a_d: Vec<f64> = answer.iter().map(|&id| d_of(id)).collect();
        let mut o_d: Vec<f64> = truth_eff.iter().map(|n| n.dist()).collect();
        a_d.sort_unstable_by(f64::total_cmp);
        o_d.sort_unstable_by(f64::total_cmp);
        let dists_ok = a_d.iter().zip(&o_d).all(|(a, o)| (a - o).abs() <= TIE_EPS);
        members_ok && order_ok && dists_ok
    };

    // --- accuracy at the true center --------------------------------------
    let truth = oracle.knn_excluding(true_center, k, focal);
    let truth_ids: std::collections::BTreeSet<ObjectId> = truth.iter().map(|n| n.id).collect();
    let hit = answer.iter().filter(|id| truth_ids.contains(id)).count();
    let recall_vs_true = if truth.is_empty() {
        1.0
    } else {
        hit as f64 / truth.len() as f64
    };
    let sum_true: f64 = truth.iter().map(|n| n.dist()).sum();
    let sum_answer: f64 = answer
        .iter()
        .map(|&id| world.position(id).dist(true_center))
        .sum();
    let dist_error = if truth.is_empty() {
        0.0
    } else if answer.len() < truth.len() {
        // Missing members: the user has *no* neighbor in those slots, which
        // no finite distance sum can express — charge the max clamp.
        DIST_ERROR_MAX
    } else if sum_true > 0.0 {
        (sum_answer / sum_true - 1.0).clamp(0.0, DIST_ERROR_MAX)
    } else {
        0.0
    };

    AnswerCheck {
        exact,
        recall_vs_true,
        dist_error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mknn_geom::Rect;
    use mknn_mobility::{MovingObject, Stationary, World};
    use mknn_util::Rng;

    /// Builds the per-tick snapshot oracle and checks, like the engine does.
    #[allow(clippy::too_many_arguments)]
    fn check(
        world: &World,
        focal: ObjectId,
        k: usize,
        answer: &[ObjectId],
        effective: Point,
        true_center: Point,
        ordered: bool,
    ) -> AnswerCheck {
        let indexed = check_answer(
            world,
            &SnapshotOracle::build(world),
            focal,
            k,
            answer,
            effective,
            true_center,
            ordered,
        );
        let brute = check_answer(
            world,
            &SnapshotOracle::build_bruteforce(world),
            focal,
            k,
            answer,
            effective,
            true_center,
            ordered,
        );
        assert_eq!(indexed, brute, "indexed and brute oracles must agree");
        indexed
    }

    fn line_world() -> World {
        let objs: Vec<MovingObject> = (0..6u32)
            .map(|i| MovingObject::at(ObjectId(i), Point::new(i as f64 * 10.0, 0.0), 0.0))
            .collect();
        World::new(
            Rect::square(100.0),
            objs,
            Box::new(Stationary),
            1.0,
            Rng::seed_from_u64(0),
        )
    }

    #[test]
    fn exact_answer_passes() {
        let w = line_world();
        let q = Point::new(0.0, 0.0);
        let ck = check(&w, ObjectId(0), 2, &[ObjectId(1), ObjectId(2)], q, q, true);
        assert!(ck.exact);
        assert_eq!(ck.recall_vs_true, 1.0);
        assert_eq!(ck.dist_error, 0.0);
    }

    #[test]
    fn wrong_member_fails_exactness() {
        let w = line_world();
        let q = Point::new(0.0, 0.0);
        let ck = check(&w, ObjectId(0), 2, &[ObjectId(1), ObjectId(3)], q, q, false);
        assert!(!ck.exact);
        assert_eq!(ck.recall_vs_true, 0.5);
        assert!(ck.dist_error > 0.0);
    }

    #[test]
    fn wrong_order_fails_only_in_ordered_mode() {
        let w = line_world();
        let q = Point::new(0.0, 0.0);
        let swapped = [ObjectId(2), ObjectId(1)];
        assert!(!check(&w, ObjectId(0), 2, &swapped, q, q, true).exact);
        assert!(check(&w, ObjectId(0), 2, &swapped, q, q, false).exact);
    }

    #[test]
    fn tie_swap_counts_as_exact() {
        // Objects 1 and 2 equidistant from the query point.
        let objs = vec![
            MovingObject::at(ObjectId(0), Point::new(0.0, 0.0), 0.0),
            MovingObject::at(ObjectId(1), Point::new(5.0, 0.0), 0.0),
            MovingObject::at(ObjectId(2), Point::new(-5.0, 0.0), 0.0),
            MovingObject::at(ObjectId(3), Point::new(50.0, 0.0), 0.0),
        ];
        let w = World::new(
            Rect::square(100.0),
            objs,
            Box::new(Stationary),
            1.0,
            Rng::seed_from_u64(0),
        );
        let q = Point::new(0.0, 0.0);
        // Canonical oracle picks id 1 for k=1; id 2 is an equally valid answer.
        let ck = check(&w, ObjectId(0), 1, &[ObjectId(2)], q, q, true);
        assert!(ck.exact);
    }

    #[test]
    fn effective_vs_true_center_distinction() {
        let w = line_world();
        // Answer exact at the effective center (8,0) — nearest is object 1 —
        // but the true center (22,0) has object 2 nearest.
        let ck = check(
            &w,
            ObjectId(0),
            1,
            &[ObjectId(1)],
            Point::new(8.0, 0.0),
            Point::new(22.0, 0.0),
            true,
        );
        assert!(ck.exact);
        assert_eq!(ck.recall_vs_true, 0.0);
    }

    #[test]
    fn short_answer_fails() {
        let w = line_world();
        let q = Point::new(0.0, 0.0);
        let ck = check(&w, ObjectId(0), 3, &[ObjectId(1)], q, q, false);
        assert!(!ck.exact);
    }

    #[test]
    fn short_answer_is_charged_the_max_dist_error() {
        let w = line_world();
        let q = Point::new(0.0, 0.0);
        // Two slots missing out of three: before the fix this scored 0.0
        // (distance-perfect) because only equal-length answers were charged.
        let ck = check(&w, ObjectId(0), 3, &[ObjectId(1)], q, q, false);
        assert_eq!(ck.dist_error, DIST_ERROR_MAX);
        // An empty answer is maximally bad too.
        let ck = check(&w, ObjectId(0), 3, &[], q, q, false);
        assert_eq!(ck.dist_error, DIST_ERROR_MAX);
        assert_eq!(ck.recall_vs_true, 0.0);
    }

    #[test]
    fn dist_error_is_clamped_at_the_max() {
        let w = line_world();
        let q = Point::new(0.0, 0.0);
        // Farthest possible member (id 5, d = 50) instead of the nearest
        // (id 1, d = 10): relative error 4.0 clamps to the max.
        let ck = check(&w, ObjectId(0), 1, &[ObjectId(5)], q, q, false);
        assert_eq!(ck.dist_error, DIST_ERROR_MAX);
    }

    #[test]
    fn knn_excluding_matches_filtered_bruteforce() {
        let w = line_world();
        let oracle = SnapshotOracle::build(&w);
        for k in [0, 1, 3, 5, 10] {
            for focal in 0..6u32 {
                let got = oracle.knn_excluding(Point::new(23.0, 1.0), k, ObjectId(focal));
                let want = bruteforce::knn(
                    w.snapshot().filter(|&(id, _)| id != ObjectId(focal)),
                    Point::new(23.0, 1.0),
                    k,
                );
                assert_eq!(got, want, "k = {k}, focal = {focal}");
            }
        }
    }
}
