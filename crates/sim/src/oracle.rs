//! Brute-force oracle verification of maintained answers.

use mknn_geom::{ObjectId, Point};
use mknn_index::bruteforce;
use mknn_mobility::World;

/// Distance tolerance for tie handling: answers that differ from the oracle
/// only in members at (floating-point-)equal distance are considered exact,
/// because no geometric protocol can distinguish exact ties.
const TIE_EPS: f64 = 1e-9;

/// Result of checking one query's answer at one tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnswerCheck {
    /// The maintained answer is an exact kNN (set- or order-wise, per the
    /// method's semantics) at the *effective* query center.
    pub exact: bool,
    /// Overlap with the true-position kNN set, in `[0, 1]` — the accuracy
    /// experiments' headline number (1.0 means the answer is also perfect
    /// with respect to the focal object's true position).
    pub recall_vs_true: f64,
    /// Relative distance error vs. the true kNN: `(Σ d_answer / Σ d_true) − 1`,
    /// clamped at 0. Zero when the answer is distance-optimal.
    pub dist_error: f64,
}

/// Verifies `answer` for a query with focal `focal` and parameter `k`.
///
/// `effective` is the query point the method claims exactness for;
/// `true_center` is the focal object's true position. `ordered` selects
/// sequence (vs. set) comparison.
pub fn check_answer(
    world: &World,
    focal: ObjectId,
    k: usize,
    answer: &[ObjectId],
    effective: Point,
    true_center: Point,
    ordered: bool,
) -> AnswerCheck {
    let population = || world.snapshot().filter(|&(id, _)| id != focal);

    // --- exactness at the effective center -------------------------------
    let oracle = bruteforce::knn(population(), effective, k);
    let exact = if answer.len() != oracle.len() {
        false
    } else {
        let d_of = |id: ObjectId| world.position(id).dist(effective);
        let d_k = oracle.last().map_or(0.0, |n| n.dist());
        // Every answered member must be at least as close as the k-th oracle
        // distance (ties allowed)…
        let members_ok = answer.iter().all(|&id| d_of(id) <= d_k + TIE_EPS);
        // …and in ordered mode the reported sequence must be non-decreasing.
        let order_ok = !ordered
            || answer
                .windows(2)
                .all(|w| d_of(w[0]) <= d_of(w[1]) + TIE_EPS);
        // Distance multisets must agree (catches wrong members hiding
        // behind an equal count).
        let mut a_d: Vec<f64> = answer.iter().map(|&id| d_of(id)).collect();
        let mut o_d: Vec<f64> = oracle.iter().map(|n| n.dist()).collect();
        a_d.sort_unstable_by(f64::total_cmp);
        o_d.sort_unstable_by(f64::total_cmp);
        let dists_ok = a_d.iter().zip(&o_d).all(|(a, o)| (a - o).abs() <= TIE_EPS);
        members_ok && order_ok && dists_ok
    };

    // --- accuracy at the true center --------------------------------------
    let truth = bruteforce::knn(population(), true_center, k);
    let truth_ids: std::collections::BTreeSet<ObjectId> = truth.iter().map(|n| n.id).collect();
    let hit = answer.iter().filter(|id| truth_ids.contains(id)).count();
    let recall_vs_true = if truth.is_empty() {
        1.0
    } else {
        hit as f64 / truth.len() as f64
    };
    let sum_true: f64 = truth.iter().map(|n| n.dist()).sum();
    let sum_answer: f64 = answer
        .iter()
        .map(|&id| world.position(id).dist(true_center))
        .sum();
    let dist_error = if sum_true > 0.0 && answer.len() == truth.len() {
        (sum_answer / sum_true - 1.0).max(0.0)
    } else {
        0.0
    };

    AnswerCheck {
        exact,
        recall_vs_true,
        dist_error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mknn_geom::Rect;
    use mknn_mobility::{MovingObject, Stationary, World};
    use mknn_util::Rng;

    fn line_world() -> World {
        let objs: Vec<MovingObject> = (0..6u32)
            .map(|i| MovingObject::at(ObjectId(i), Point::new(i as f64 * 10.0, 0.0), 0.0))
            .collect();
        World::new(
            Rect::square(100.0),
            objs,
            Box::new(Stationary),
            1.0,
            Rng::seed_from_u64(0),
        )
    }

    #[test]
    fn exact_answer_passes() {
        let w = line_world();
        let q = Point::new(0.0, 0.0);
        let ck = check_answer(&w, ObjectId(0), 2, &[ObjectId(1), ObjectId(2)], q, q, true);
        assert!(ck.exact);
        assert_eq!(ck.recall_vs_true, 1.0);
        assert_eq!(ck.dist_error, 0.0);
    }

    #[test]
    fn wrong_member_fails_exactness() {
        let w = line_world();
        let q = Point::new(0.0, 0.0);
        let ck = check_answer(&w, ObjectId(0), 2, &[ObjectId(1), ObjectId(3)], q, q, false);
        assert!(!ck.exact);
        assert_eq!(ck.recall_vs_true, 0.5);
        assert!(ck.dist_error > 0.0);
    }

    #[test]
    fn wrong_order_fails_only_in_ordered_mode() {
        let w = line_world();
        let q = Point::new(0.0, 0.0);
        let swapped = [ObjectId(2), ObjectId(1)];
        assert!(!check_answer(&w, ObjectId(0), 2, &swapped, q, q, true).exact);
        assert!(check_answer(&w, ObjectId(0), 2, &swapped, q, q, false).exact);
    }

    #[test]
    fn tie_swap_counts_as_exact() {
        // Objects 1 and 2 equidistant from the query point.
        let objs = vec![
            MovingObject::at(ObjectId(0), Point::new(0.0, 0.0), 0.0),
            MovingObject::at(ObjectId(1), Point::new(5.0, 0.0), 0.0),
            MovingObject::at(ObjectId(2), Point::new(-5.0, 0.0), 0.0),
            MovingObject::at(ObjectId(3), Point::new(50.0, 0.0), 0.0),
        ];
        let w = World::new(
            Rect::square(100.0),
            objs,
            Box::new(Stationary),
            1.0,
            Rng::seed_from_u64(0),
        );
        let q = Point::new(0.0, 0.0);
        // Canonical oracle picks id 1 for k=1; id 2 is an equally valid answer.
        let ck = check_answer(&w, ObjectId(0), 1, &[ObjectId(2)], q, q, true);
        assert!(ck.exact);
    }

    #[test]
    fn effective_vs_true_center_distinction() {
        let w = line_world();
        // Answer exact at the effective center (8,0) — nearest is object 1 —
        // but the true center (22,0) has object 2 nearest.
        let ck = check_answer(
            &w,
            ObjectId(0),
            1,
            &[ObjectId(1)],
            Point::new(8.0, 0.0),
            Point::new(22.0, 0.0),
            true,
        );
        assert!(ck.exact);
        assert_eq!(ck.recall_vs_true, 0.0);
    }

    #[test]
    fn short_answer_fails() {
        let w = line_world();
        let q = Point::new(0.0, 0.0);
        let ck = check_answer(&w, ObjectId(0), 3, &[ObjectId(1)], q, q, false);
        assert!(!ck.exact);
    }
}
