//! Plain-text table rendering and CSV output for experiment results.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Renders rows as an aligned plain-text table (first row = header).
pub fn render_table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(Vec::len).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (ri, row) in rows.iter().enumerate() {
        for (i, w) in widths.iter().enumerate() {
            let cell = row.get(i).map(String::as_str).unwrap_or("");
            if i + 1 == cols {
                let _ = write!(out, "{cell:<w$}");
            } else {
                let _ = write!(out, "{cell:<w$}  ");
            }
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
        if ri == 0 {
            let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
            out.push_str(&"-".repeat(total));
            out.push('\n');
        }
    }
    out
}

/// Writes rows as CSV (comma-separated, quotes around cells containing
/// commas or quotes), creating parent directories as needed.
pub fn write_csv(path: &Path, rows: &[Vec<String>]) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut s = String::new();
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .map(|c| {
                if c.contains(',') || c.contains('"') || c.contains('\n') {
                    format!("\"{}\"", c.replace('"', "\"\""))
                } else {
                    c.clone()
                }
            })
            .collect();
        s.push_str(&line.join(","));
        s.push('\n');
    }
    std::fs::write(path, s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let rows = vec![
            vec!["method".into(), "msgs".into()],
            vec!["dknn-set".into(), "9.1".into()],
            vec!["centralized".into(), "400".into()],
        ];
        let t = render_table(&rows);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("method"));
        assert!(lines[1].starts_with("---"));
        // All "msgs" values start at the same column.
        let col = lines[0].find("msgs").unwrap();
        assert_eq!(lines[2].find("9.1").unwrap(), col);
        assert_eq!(lines[3].find("400").unwrap(), col);
    }

    #[test]
    fn csv_escapes_properly() {
        let dir = std::env::temp_dir().join("mknn-table-test");
        let path = dir.join("out.csv");
        let rows = vec![
            vec!["a".into(), "b,c".into()],
            vec!["d\"e".into(), "f".into()],
        ];
        write_csv(&path, &rows).unwrap();
        let s = std::fs::read_to_string(&path).unwrap();
        assert_eq!(s, "a,\"b,c\"\n\"d\"\"e\",f\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_table_is_empty() {
        assert_eq!(render_table(&[]), "");
    }
}
