//! Method factory and episode runner used by experiments and examples.

use crate::{EpisodeMetrics, SimConfig, Simulation};
use mknn_baselines::{Centralized, NaiveBroadcast, Periodic};
use mknn_core::{Dknn, DknnBuffered, DknnParams};
use mknn_net::Protocol;

/// A monitoring method with its configuration, ready to be instantiated for
/// an episode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Method {
    /// Distributed protocol, set semantics.
    DknnSet(DknnParams),
    /// Distributed protocol, order-preserving semantics.
    DknnOrder(DknnParams),
    /// Buffered-candidate distributed protocol (order-preserving, region
    /// decoupled from the answer boundary via a candidate buffer).
    DknnBuffer {
        /// Protocol parameters.
        params: DknnParams,
        /// Spare candidates beyond k.
        buffer: usize,
    },
    /// Centralized per-tick reporting with a `res × res` server grid.
    Centralized {
        /// Server grid resolution.
        res: u32,
    },
    /// Periodic reporting every `period` ticks.
    Periodic {
        /// Reporting period in ticks.
        period: u64,
        /// Server grid resolution.
        res: u32,
    },
    /// Per-tick adaptive probing strawman.
    Naive {
        /// Zone over-size factor.
        headroom: f64,
    },
}

impl Method {
    /// The default comparison set used by most experiments.
    pub fn standard_suite(params: DknnParams) -> Vec<Method> {
        vec![
            Method::DknnSet(params),
            Method::DknnOrder(params),
            Method::DknnBuffer { params, buffer: 3 },
            Method::Centralized { res: 64 },
            Method::Periodic {
                period: 10,
                res: 64,
            },
            Method::Naive { headroom: 1.5 },
        ]
    }

    /// Instantiates the protocol.
    pub fn build(&self) -> Box<dyn Protocol> {
        match *self {
            Method::DknnSet(p) => Box::new(Dknn::set(p)),
            Method::DknnOrder(p) => Box::new(Dknn::ordered(p)),
            Method::DknnBuffer { params, buffer } => Box::new(DknnBuffered::new(params, buffer)),
            Method::Centralized { res } => Box::new(Centralized::new(res)),
            Method::Periodic { period, res } => Box::new(Periodic::new(period, res)),
            Method::Naive { headroom } => Box::new(NaiveBroadcast::new(headroom)),
        }
    }

    /// Display name (matches [`Protocol::name`]).
    pub fn name(&self) -> &'static str {
        match self {
            Method::DknnSet(_) => "dknn-set",
            Method::DknnOrder(_) => "dknn-order",
            Method::DknnBuffer { .. } => "dknn-buffer",
            Method::Centralized { .. } => "centralized",
            Method::Periodic { .. } => "periodic",
            Method::Naive { .. } => "naive-probe",
        }
    }
}

/// Runs one full episode of `method` under `config`.
pub fn run_episode(config: &SimConfig, method: Method) -> EpisodeMetrics {
    Simulation::new(config, method.build()).run()
}

/// Runs `seeds` independent repetitions (seed, seed+1, …) of `method` and
/// returns the per-seed metrics, for aggregation with
/// [`crate::MetricsSummary`].
pub fn run_episodes_seeded(config: &SimConfig, method: Method, seeds: u64) -> Vec<EpisodeMetrics> {
    (0..seeds.max(1))
        .map(|i| {
            let mut cfg = config.clone();
            cfg.workload.seed = config.workload.seed.wrapping_add(i);
            run_episode(&cfg, method)
        })
        .collect()
}

/// Derives DKNN parameters sized for a workload's speed bounds (the
/// protocol's soundness inputs come from the registration contract, so
/// experiments derive them from the workload spec).
pub fn params_for(config: &SimConfig) -> DknnParams {
    let v = config.workload.speeds.max_speed();
    DknnParams {
        v_max_obj: v,
        v_max_q: v,
        query_drift: 2.0 * v,
        ..DknnParams::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_method_builds_and_runs() {
        let mut cfg = SimConfig::small();
        cfg.ticks = 15;
        cfg.workload.n_objects = 150;
        for method in Method::standard_suite(params_for(&cfg)) {
            let m = run_episode(&cfg, method);
            assert_eq!(m.ticks, 15, "{}", method.name());
            assert_eq!(m.method, method.name());
            assert!(m.net.total_msgs() > 0, "{} sent nothing", method.name());
        }
    }

    #[test]
    fn params_for_scales_with_speed() {
        let mut cfg = SimConfig::small();
        cfg.workload.speeds = mknn_mobility::SpeedDist::Fixed(7.0);
        let p = params_for(&cfg);
        assert_eq!(p.v_max_obj, 7.0);
        assert_eq!(p.query_drift, 14.0);
    }
}
