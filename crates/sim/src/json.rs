//! JSON conversions for simulation configuration and reported metrics.
//!
//! Encodings mirror the conventions the former `serde` derives produced:
//! structs become field-keyed objects, unit enum variants become bare
//! strings, data-carrying variants become single-key objects
//! (`{"DknnSet": {...}}`).

use crate::{
    DownlinkMode, EpisodeMetrics, Method, SimConfig, Summary, TickSample, TickSeries, VerifyMode,
};
use mknn_core::DknnParams;
use mknn_util::impl_json_struct;
use mknn_util::json::{FromJson, Json, JsonError, ToJson};

// SimConfig and EpisodeMetrics are hand-written instead of derived so the
// fault-layer fields disappear from the encoding whenever they are inert:
// a no-fault config and a clean episode serialize byte-identically to
// documents produced before the fault layer existed (the byte-identity
// gates in scripts/verify.sh diff exactly this output), and old documents
// parse with the absent fields defaulting to the inert values.
impl ToJson for SimConfig {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("workload", self.workload.to_json()),
            ("n_queries", self.n_queries.to_json()),
            ("k", self.k.to_json()),
            ("ticks", self.ticks.to_json()),
            ("geo_cells", self.geo_cells.to_json()),
            ("verify", self.verify.to_json()),
        ];
        if !self.fault.is_none() {
            fields.push(("fault", self.fault.to_json()));
        }
        // Like `fault`: single-server configs (the only kind that existed
        // before the shard tier) keep their original shape.
        if self.shards != 1 {
            fields.push(("shards", self.shards.to_json()));
        }
        // Absent unless pinned: the pool size never changes metrics, and
        // golden documents predate the knob.
        if let Some(t) = self.client_threads {
            fields.push(("client_threads", t.to_json()));
        }
        // The scoped default is absent so documents only carry the key when
        // they deliberately opt back into the legacy byte model.
        if self.downlink != DownlinkMode::Scoped {
            fields.push(("downlink", self.downlink.to_json()));
        }
        Json::object(fields)
    }
}

impl FromJson for SimConfig {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(SimConfig {
            workload: v.parse_field("workload")?,
            n_queries: v.parse_field("n_queries")?,
            k: v.parse_field("k")?,
            ticks: v.parse_field("ticks")?,
            geo_cells: v.parse_field("geo_cells")?,
            verify: v.parse_field("verify")?,
            fault: v.parse_field_or_default("fault")?,
            // The absent-field default is 1 (single server), not
            // `u32::default()`.
            shards: match v.get("shards") {
                Some(s) => u32::from_json(s)?,
                None => 1,
            },
            client_threads: match v.get("client_threads") {
                Some(t) => Some(usize::from_json(t)?),
                None => None,
            },
            downlink: v.parse_field_or_default("downlink")?,
        })
    }
}

impl ToJson for EpisodeMetrics {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("method", self.method.to_json()),
            ("ticks", self.ticks.to_json()),
            ("n_objects", self.n_objects.to_json()),
            ("n_queries", self.n_queries.to_json()),
            ("k", self.k.to_json()),
            ("net", self.net.to_json()),
            ("ops", self.ops.to_json()),
            ("exact_checks", self.exact_checks.to_json()),
            ("exact_ok", self.exact_ok.to_json()),
            ("recall_sum", self.recall_sum.to_json()),
            ("dist_error_sum", self.dist_error_sum.to_json()),
        ];
        if self.staleness_sum != 0 {
            fields.push(("staleness_sum", self.staleness_sum.to_json()));
        }
        if self.max_staleness != 0 {
            fields.push(("max_staleness", self.max_staleness.to_json()));
        }
        fields.push(("proto_seconds", self.proto_seconds.to_json()));
        // The per-phase timing splits are omit-when-zero like the staleness
        // fields: clock-zeroed documents (golden files, determinism gates)
        // predate them and must not change shape.
        if self.client_seconds != 0.0 {
            fields.push(("client_seconds", self.client_seconds.to_json()));
        }
        if self.server_seconds != 0.0 {
            fields.push(("server_seconds", self.server_seconds.to_json()));
        }
        if self.route_seconds != 0.0 {
            fields.push(("route_seconds", self.route_seconds.to_json()));
        }
        // Like `shard_load` below: only a genuinely sharded tier carries a
        // per-shard timing breakdown.
        if self.shard_seconds.len() > 1 {
            fields.push(("shard_seconds", self.shard_seconds.to_json()));
        }
        if self.oracle_seconds != 0.0 {
            fields.push(("oracle_seconds", self.oracle_seconds.to_json()));
        }
        // A single-server episode records one trivial shard load; only
        // genuinely sharded runs (G > 1) carry the distribution, so golden
        // documents keep their pre-shard shape.
        if self.shard_load.len() > 1 {
            fields.push(("shard_load", self.shard_load.to_json()));
        }
        // Crash accounting exists only under crash-scheduling fault plans;
        // omit-when-zero keeps every pre-crash document byte-identical.
        if self.shard_crashes != 0 {
            fields.push(("shard_crashes", self.shard_crashes.to_json()));
        }
        if self.crash_down_ticks != 0 {
            fields.push(("crash_down_ticks", self.crash_down_ticks.to_json()));
        }
        Json::object(fields)
    }
}

impl FromJson for EpisodeMetrics {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(EpisodeMetrics {
            method: v.parse_field("method")?,
            ticks: v.parse_field("ticks")?,
            n_objects: v.parse_field("n_objects")?,
            n_queries: v.parse_field("n_queries")?,
            k: v.parse_field("k")?,
            net: v.parse_field("net")?,
            ops: v.parse_field("ops")?,
            exact_checks: v.parse_field("exact_checks")?,
            exact_ok: v.parse_field("exact_ok")?,
            recall_sum: v.parse_field("recall_sum")?,
            dist_error_sum: v.parse_field("dist_error_sum")?,
            staleness_sum: v.parse_field_or_default("staleness_sum")?,
            max_staleness: v.parse_field_or_default("max_staleness")?,
            proto_seconds: v.parse_field("proto_seconds")?,
            client_seconds: v.parse_field_or_default("client_seconds")?,
            server_seconds: v.parse_field_or_default("server_seconds")?,
            route_seconds: v.parse_field_or_default("route_seconds")?,
            shard_seconds: v.parse_field_or_default("shard_seconds")?,
            oracle_seconds: v.parse_field_or_default("oracle_seconds")?,
            shard_load: v.parse_field_or_default("shard_load")?,
            shard_crashes: v.parse_field_or_default("shard_crashes")?,
            crash_down_ticks: v.parse_field_or_default("crash_down_ticks")?,
        })
    }
}
impl_json_struct!(TickSample {
    tick,
    uplink,
    downlink,
    bytes,
    server_ops,
    exact_queries,
    checked_queries,
});
impl_json_struct!(Summary {
    n,
    mean,
    std_dev,
    min,
    max
});

impl ToJson for DownlinkMode {
    fn to_json(&self) -> Json {
        let name = match self {
            DownlinkMode::Scoped => "scoped",
            DownlinkMode::Legacy => "legacy",
        };
        Json::Str(name.to_string())
    }
}

impl FromJson for DownlinkMode {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_str()? {
            "scoped" => Ok(DownlinkMode::Scoped),
            "legacy" => Ok(DownlinkMode::Legacy),
            other => Err(JsonError::new(format!("unknown DownlinkMode `{other}`"))),
        }
    }
}

impl ToJson for VerifyMode {
    fn to_json(&self) -> Json {
        let name = match self {
            VerifyMode::Off => "Off",
            VerifyMode::Record => "Record",
            VerifyMode::Assert => "Assert",
        };
        Json::Str(name.to_string())
    }
}

impl FromJson for VerifyMode {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_str()? {
            "Off" => Ok(VerifyMode::Off),
            "Record" => Ok(VerifyMode::Record),
            "Assert" => Ok(VerifyMode::Assert),
            other => Err(JsonError::new(format!("unknown VerifyMode `{other}`"))),
        }
    }
}

impl ToJson for TickSeries {
    fn to_json(&self) -> Json {
        Json::object([("samples", self.samples().to_vec().to_json())])
    }
}

impl FromJson for TickSeries {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let samples: Vec<TickSample> = v.parse_field("samples")?;
        if let Some(w) = samples.windows(2).find(|w| w[0].tick >= w[1].tick) {
            return Err(JsonError::new(format!(
                "samples out of tick order: {} then {}",
                w[0].tick, w[1].tick
            )));
        }
        Ok(TickSeries::from_samples(samples))
    }
}

impl ToJson for Method {
    fn to_json(&self) -> Json {
        match *self {
            Method::DknnSet(p) => Json::object([("DknnSet", p.to_json())]),
            Method::DknnOrder(p) => Json::object([("DknnOrder", p.to_json())]),
            Method::DknnBuffer { params, buffer } => Json::object([(
                "DknnBuffer",
                Json::object([("params", params.to_json()), ("buffer", buffer.to_json())]),
            )]),
            Method::Centralized { res } => {
                Json::object([("Centralized", Json::object([("res", res.to_json())]))])
            }
            Method::Periodic { period, res } => Json::object([(
                "Periodic",
                Json::object([("period", period.to_json()), ("res", res.to_json())]),
            )]),
            Method::Naive { headroom } => {
                Json::object([("Naive", Json::object([("headroom", headroom.to_json())]))])
            }
        }
    }
}

impl FromJson for Method {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        // A bare canonical name ("dknn-set", "centralized", …) selects the
        // standard-suite method of that name with default parameters — the
        // same vocabulary the `expt --method` CLI flag accepts, via the one
        // shared table behind `Method::parse`.
        if let Ok(name) = v.as_str() {
            return Method::parse(name, DknnParams::default())
                .ok_or_else(|| JsonError::new(format!("unknown method name `{name}`")));
        }
        if let Some(p) = v.get("DknnSet") {
            return Ok(Method::DknnSet(DknnParams::from_json(p)?));
        }
        if let Some(p) = v.get("DknnOrder") {
            return Ok(Method::DknnOrder(DknnParams::from_json(p)?));
        }
        if let Some(body) = v.get("DknnBuffer") {
            return Ok(Method::DknnBuffer {
                params: body.parse_field("params")?,
                buffer: body.parse_field("buffer")?,
            });
        }
        if let Some(body) = v.get("Centralized") {
            return Ok(Method::Centralized {
                res: body.parse_field("res")?,
            });
        }
        if let Some(body) = v.get("Periodic") {
            return Ok(Method::Periodic {
                period: body.parse_field("period")?,
                res: body.parse_field("res")?,
            });
        }
        if let Some(body) = v.get("Naive") {
            return Ok(Method::Naive {
                headroom: body.parse_field("headroom")?,
            });
        }
        Err(JsonError::new("expected a Method variant object"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mknn_net::MsgKind;
    use mknn_util::{from_str, to_string};

    fn roundtrip<T: ToJson + FromJson + PartialEq + std::fmt::Debug>(v: &T) {
        let s = to_string(v);
        let back: T = from_str(&s).unwrap_or_else(|e| panic!("parse of {s}: {e}"));
        assert_eq!(&back, v, "round trip through {s}");
    }

    #[test]
    fn sim_config_round_trips() {
        roundtrip(&SimConfig::default());
        roundtrip(&SimConfig::small());
        roundtrip(&SimConfig {
            verify: VerifyMode::Off,
            ..SimConfig::default()
        });
    }

    #[test]
    fn sharded_config_round_trips_and_single_server_hides_the_key() {
        let single = to_string(&SimConfig::default());
        assert!(!single.contains("shards"), "got: {single}");
        let sharded = SimConfig {
            shards: 4,
            ..SimConfig::default()
        };
        let s = to_string(&sharded);
        assert!(s.contains("\"shards\":4"), "got: {s}");
        roundtrip(&sharded);
        // Pre-shard documents default to the single server, not to zero.
        let old: SimConfig = from_str(&single).unwrap();
        assert_eq!(old.shards, 1);
    }

    #[test]
    fn sharded_metrics_round_trip_and_single_server_hides_the_load() {
        let mut m = EpisodeMetrics {
            method: "dknn-set".into(),
            ticks: 10,
            proto_seconds: 0.5,
            shard_load: vec![40],
            ..Default::default()
        };
        assert!(
            !to_string(&m).contains("shard_load"),
            "single-server load vector is omitted"
        );
        m.shard_load = vec![40, 10, 0, 25];
        let s = to_string(&m);
        assert!(s.contains("\"shard_load\":[40,10,0,25]"), "got: {s}");
        let back: EpisodeMetrics = from_str(&s).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn episode_metrics_round_trip() {
        let mut m = EpisodeMetrics {
            method: "dknn-set".into(),
            ticks: 200,
            n_objects: 1000,
            n_queries: 10,
            k: 8,
            exact_checks: 2_000,
            exact_ok: 1_998,
            recall_sum: 1_994.5,
            dist_error_sum: 0.75,
            proto_seconds: 1.25,
            ..Default::default()
        };
        m.net.count_uplink(MsgKind::Position, 28);
        m.net.count_geocast(MsgKind::InstallRegion, 52, 12);
        m.ops.server_ops = 4_321;
        roundtrip(&m);
        assert!(
            !to_string(&m).contains("staleness"),
            "clean episodes omit the staleness fields"
        );
        assert!(
            !to_string(&m).contains("oracle_seconds"),
            "clock-zeroed episodes omit the oracle-time field"
        );
        m.staleness_sum = 17;
        m.max_staleness = 4;
        m.ops.retransmits = 9;
        m.net.count_dropped();
        m.oracle_seconds = 0.375;
        roundtrip(&m);
    }

    #[test]
    fn phase_timing_round_trips_and_zeroed_documents_keep_shape() {
        let mut m = EpisodeMetrics {
            method: "dknn-set".into(),
            ticks: 5,
            proto_seconds: 1.0,
            ..Default::default()
        };
        let s = to_string(&m);
        for field in [
            "client_seconds",
            "server_seconds",
            "route_seconds",
            "shard_seconds",
        ] {
            assert!(!s.contains(field), "clock-zeroed documents omit {field}");
        }
        m.client_seconds = 0.25;
        m.server_seconds = 0.5;
        m.route_seconds = 0.25;
        m.shard_seconds = vec![0.3, 0.2];
        roundtrip(&m);
        // A single-server timing vector is omitted, like `shard_load`.
        m.shard_seconds = vec![0.5];
        assert!(!to_string(&m).contains("shard_seconds"));
    }

    #[test]
    fn metrics_json_never_carries_nan_or_inf_tokens() {
        // Empty-distribution accessors clamp to finite values, and no field
        // of a default episode may serialize a NaN/Infinity token (which
        // would not even be valid JSON).
        let empty = EpisodeMetrics::default();
        assert!(empty.shard_load_p99().is_finite());
        let doc = to_string(&empty).to_ascii_lowercase();
        assert!(!doc.contains("nan") && !doc.contains("inf"), "got: {doc}");
    }

    #[test]
    fn tick_series_round_trips() {
        let mut s = TickSeries::new();
        for t in 1..=5u64 {
            s.push(TickSample {
                tick: t,
                uplink: t * 3,
                downlink: t,
                bytes: t * 100,
                ..Default::default()
            });
        }
        roundtrip(&s);
        roundtrip(&TickSeries::new());
    }

    #[test]
    fn out_of_order_series_is_rejected() {
        let doc = r#"{"samples":[{"tick":5,"uplink":0,"downlink":0,"bytes":0,"server_ops":0,"exact_queries":0,"checked_queries":0},{"tick":2,"uplink":0,"downlink":0,"bytes":0,"server_ops":0,"exact_queries":0,"checked_queries":0}]}"#;
        assert!(from_str::<TickSeries>(doc).is_err());
    }

    #[test]
    fn method_variants_round_trip() {
        for m in Method::standard_suite(DknnParams::default()) {
            roundtrip(&m);
        }
        assert!(from_str::<Method>("{\"Oracle\":{}}").is_err());
    }

    #[test]
    fn method_parses_from_a_bare_canonical_name() {
        for m in Method::standard_suite(DknnParams::default()) {
            let parsed: Method = from_str(&format!("\"{}\"", m.name())).unwrap();
            assert_eq!(parsed, m);
        }
        assert!(from_str::<Method>("\"oracle\"").is_err());
    }

    #[test]
    fn invalid_params_inside_a_method_fail_the_parse() {
        let doc = r#"{"DknnSet":{"alpha":2.0,"query_drift":40.0,"heartbeat":5,"v_max_obj":20.0,"v_max_q":20.0,"expand_factor":2.0,"band_escalation":3}}"#;
        let err = from_str::<Method>(doc).unwrap_err();
        assert!(err.to_string().contains("alpha"), "{err}");
    }

    #[test]
    fn summary_round_trips_including_nan() {
        roundtrip(&Summary::of(&[2.0, 4.0, 9.0]));
        // Empty summaries are all-NaN; NaN != NaN, so compare rendered text.
        let empty = Summary::of(&[]);
        let back: Summary = from_str(&to_string(&empty)).unwrap();
        assert_eq!(back.n, 0);
        assert!(back.mean.is_nan() && back.std_dev.is_nan());
        assert!(back.min.is_nan() && back.max.is_nan());
    }
}
