//! Aggregated episode metrics.

use mknn_net::{NetStats, OpCounters};

/// Everything an experiment reports about one simulation episode.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EpisodeMetrics {
    /// Protocol name.
    pub method: String,
    /// Ticks simulated (excluding init).
    pub ticks: u64,
    /// Object population.
    pub n_objects: usize,
    /// Registered queries.
    pub n_queries: usize,
    /// Neighbors per query.
    pub k: usize,
    /// Communication totals over the episode (including init traffic).
    pub net: NetStats,
    /// Computation totals.
    pub ops: OpCounters,
    /// Oracle checks performed (`verify != Off`).
    pub exact_checks: u64,
    /// Checks that found the answer exact w.r.t. the effective center.
    pub exact_ok: u64,
    /// Sum of per-check recall against the true-position kNN.
    pub recall_sum: f64,
    /// Sum of per-check relative distance error against the true kNN.
    pub dist_error_sum: f64,
    /// Sum, over all inexact checks, of how many consecutive ticks the
    /// query's answer had already been inexact (its *staleness* at check
    /// time). Zero on a perfect link for every exact method.
    pub staleness_sum: u64,
    /// Longest run of consecutive inexact checks any single query suffered.
    pub max_staleness: u64,
    /// Wall-clock seconds spent inside protocol code (client + server +
    /// routing), excluding world stepping and oracle checks. Equals the sum
    /// of the three phase splits below (up to fp accumulation order).
    pub proto_seconds: f64,
    /// Wall-clock seconds of the client phase: per-device protocol logic
    /// plus the offline-mask/inbox bookkeeping that feeds it.
    pub client_seconds: f64,
    /// Wall-clock seconds of the server phase: per-shard task dispatch,
    /// the protocols' partitioned server ticks, and the post-phase merge.
    pub server_seconds: f64,
    /// Wall-clock seconds of routing: uplink charging and per-shard
    /// splitting before the server phase, downlink delivery and answer
    /// replication after it.
    pub route_seconds: f64,
    /// Wall-clock seconds each server shard's task spent inside protocol
    /// code, indexed by shard id and summed over the episode. The parallel
    /// speedup of the server phase is `sum(shard_seconds) /
    /// server_seconds` (up to dispatch overhead). Empty until the first
    /// step; single-server episodes omit the field from the serialized
    /// form.
    pub shard_seconds: Vec<f64>,
    /// Wall-clock seconds spent verifying answers against the ground-truth
    /// oracle (snapshot-index build + all per-query checks). Zero when
    /// verification is off; kept separate from [`Self::proto_seconds`] so
    /// verification cost is observable apart from the protocols under test.
    pub oracle_seconds: f64,
    /// Per-shard load at episode end (messages each server shard processed,
    /// indexed by shard id). Length equals the configured shard count; a
    /// single-server episode carries one entry and omits the field from the
    /// serialized form.
    pub shard_load: Vec<u64>,
    /// Shard crash windows that started during the episode (DESIGN.md §11).
    /// Zero unless the fault plan schedules crashes.
    pub shard_crashes: u64,
    /// Total shard-down exposure: one unit per down shard per tick, summed
    /// over the episode (two shards down for the same 5 ticks count 10).
    pub crash_down_ticks: u64,
}

impl EpisodeMetrics {
    /// Total messages (all directions, transmissions) per tick.
    pub fn msgs_per_tick(&self) -> f64 {
        self.net.total_msgs() as f64 / self.ticks.max(1) as f64
    }

    /// Uplink messages per tick.
    pub fn uplink_per_tick(&self) -> f64 {
        self.net.uplink_msgs as f64 / self.ticks.max(1) as f64
    }

    /// Downlink transmissions per tick (unicast + geocast cells +
    /// broadcast).
    pub fn downlink_per_tick(&self) -> f64 {
        (self.net.downlink_unicast_msgs
            + self.net.downlink_geocast_msgs
            + self.net.downlink_broadcast_msgs) as f64
            / self.ticks.max(1) as f64
    }

    /// Bytes (both directions) per tick.
    pub fn bytes_per_tick(&self) -> f64 {
        self.net.total_bytes() as f64 / self.ticks.max(1) as f64
    }

    /// Server operations per tick.
    pub fn server_ops_per_tick(&self) -> f64 {
        self.ops.server_ops as f64 / self.ticks.max(1) as f64
    }

    /// Client operations per object per tick.
    pub fn client_ops_per_object_tick(&self) -> f64 {
        self.ops.client_ops as f64 / (self.ticks.max(1) * self.n_objects.max(1) as u64) as f64
    }

    /// Fraction of verified (query, tick) pairs with an exact answer.
    pub fn exactness(&self) -> f64 {
        if self.exact_checks == 0 {
            f64::NAN
        } else {
            self.exact_ok as f64 / self.exact_checks as f64
        }
    }

    /// Mean recall against the true-position kNN.
    pub fn recall(&self) -> f64 {
        if self.exact_checks == 0 {
            f64::NAN
        } else {
            self.recall_sum / self.exact_checks as f64
        }
    }

    /// Mean relative distance error against the true-position kNN.
    pub fn dist_error(&self) -> f64 {
        if self.exact_checks == 0 {
            f64::NAN
        } else {
            self.dist_error_sum / self.exact_checks as f64
        }
    }

    /// Mean answer staleness in ticks across all oracle checks: how long,
    /// on average, a checked answer had been continuously wrong. 0 when
    /// every check was exact; NaN when verification was off.
    pub fn staleness(&self) -> f64 {
        if self.exact_checks == 0 {
            f64::NAN
        } else {
            self.staleness_sum as f64 / self.exact_checks as f64
        }
    }

    /// Protocol wall-clock microseconds per tick.
    pub fn proto_us_per_tick(&self) -> f64 {
        self.proto_seconds * 1e6 / self.ticks.max(1) as f64
    }

    /// Oracle-verification wall-clock microseconds per tick.
    pub fn oracle_us_per_tick(&self) -> f64 {
        self.oracle_seconds * 1e6 / self.ticks.max(1) as f64
    }

    /// p99 of the per-shard load distribution (the balance headline for
    /// E17: a well-partitioned tier keeps p99 close to mean). 0 when no
    /// shard loads were recorded — the accessor feeds JSON reports, which
    /// must never see a NaN token.
    pub fn shard_load_p99(&self) -> f64 {
        if self.shard_load.is_empty() {
            return 0.0;
        }
        let samples: Vec<f64> = self.shard_load.iter().map(|&l| l as f64).collect();
        crate::stats::percentile(&samples, 99.0)
    }

    /// The hottest shard's load (0 when no shard loads were recorded).
    pub fn shard_load_max(&self) -> u64 {
        self.shard_load.iter().copied().max().unwrap_or(0)
    }

    /// These metrics with the wall-clock fields zeroed: the deterministic
    /// view. Every other field is fully determined by the seed, so this is
    /// what byte-identity gates and cross-thread-count determinism tests
    /// compare.
    pub fn with_clock_zeroed(mut self) -> Self {
        self.proto_seconds = 0.0;
        self.client_seconds = 0.0;
        self.server_seconds = 0.0;
        self.route_seconds = 0.0;
        self.shard_seconds.clear();
        self.oracle_seconds = 0.0;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_tick_rates_divide_by_ticks() {
        let mut m = EpisodeMetrics {
            ticks: 10,
            n_objects: 5,
            ..Default::default()
        };
        m.net.uplink_msgs = 100;
        m.net.uplink_bytes = 4_400;
        m.ops = OpCounters {
            server_ops: 50,
            client_ops: 200,
            retransmits: 0,
        };
        assert_eq!(m.uplink_per_tick(), 10.0);
        assert_eq!(m.msgs_per_tick(), 10.0);
        assert_eq!(m.server_ops_per_tick(), 5.0);
        assert_eq!(m.client_ops_per_object_tick(), 4.0);
        assert_eq!(m.bytes_per_tick(), 440.0);
    }

    #[test]
    fn quality_rates_handle_zero_checks() {
        let m = EpisodeMetrics::default();
        assert!(m.exactness().is_nan());
        assert!(m.recall().is_nan());
        let m2 = EpisodeMetrics {
            exact_checks: 4,
            exact_ok: 3,
            recall_sum: 3.2,
            dist_error_sum: 0.4,
            ..Default::default()
        };
        assert_eq!(m2.exactness(), 0.75);
        assert_eq!(m2.recall(), 0.8);
        assert!((m2.dist_error() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn shard_load_summaries() {
        let empty = EpisodeMetrics::default();
        assert_eq!(empty.shard_load_p99(), 0.0, "empty loads must not be NaN");
        assert_eq!(empty.shard_load_max(), 0);
        let m = EpisodeMetrics {
            shard_load: vec![10, 20, 30, 100],
            ..Default::default()
        };
        assert_eq!(m.shard_load_max(), 100);
        assert!(m.shard_load_p99() > 30.0 && m.shard_load_p99() <= 100.0);
    }

    #[test]
    fn clock_zeroing_strips_every_timing_field() {
        let m = EpisodeMetrics {
            proto_seconds: 1.5,
            client_seconds: 0.5,
            server_seconds: 0.75,
            route_seconds: 0.25,
            shard_seconds: vec![0.4, 0.35],
            oracle_seconds: 0.125,
            ..Default::default()
        };
        let z = m.with_clock_zeroed();
        assert_eq!(z.proto_seconds, 0.0);
        assert_eq!(z.client_seconds, 0.0);
        assert_eq!(z.server_seconds, 0.0);
        assert_eq!(z.route_seconds, 0.0);
        assert!(z.shard_seconds.is_empty());
        assert_eq!(z.oracle_seconds, 0.0);
        assert_eq!(z, EpisodeMetrics::default());
    }

    #[test]
    fn staleness_averages_over_all_checks() {
        assert!(EpisodeMetrics::default().staleness().is_nan());
        let m = EpisodeMetrics {
            exact_checks: 10,
            staleness_sum: 5,
            max_staleness: 3,
            ..Default::default()
        };
        assert_eq!(m.staleness(), 0.5);
    }
}
