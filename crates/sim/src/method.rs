//! The monitoring-method catalogue: every protocol the experiments compare,
//! as a cheap copyable description that can be instantiated per episode.

use mknn_baselines::{Centralized, NaiveBroadcast, Periodic};
use mknn_core::{Dknn, DknnBuffered, DknnParams};
use mknn_net::Protocol;

/// A monitoring method with its configuration, ready to be instantiated for
/// an episode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Method {
    /// Distributed protocol, set semantics.
    DknnSet(DknnParams),
    /// Distributed protocol, order-preserving semantics.
    DknnOrder(DknnParams),
    /// Buffered-candidate distributed protocol (order-preserving, region
    /// decoupled from the answer boundary via a candidate buffer).
    DknnBuffer {
        /// Protocol parameters.
        params: DknnParams,
        /// Spare candidates beyond k.
        buffer: usize,
    },
    /// Centralized per-tick reporting with a `res × res` server grid.
    Centralized {
        /// Server grid resolution.
        res: u32,
    },
    /// Periodic reporting every `period` ticks.
    Periodic {
        /// Reporting period in ticks.
        period: u64,
        /// Server grid resolution.
        res: u32,
    },
    /// Per-tick adaptive probing strawman.
    Naive {
        /// Zone over-size factor.
        headroom: f64,
    },
}

impl Method {
    /// The default comparison set used by most experiments.
    pub fn standard_suite(params: DknnParams) -> Vec<Method> {
        vec![
            Method::DknnSet(params),
            Method::DknnOrder(params),
            Method::DknnBuffer { params, buffer: 3 },
            Method::Centralized { res: 64 },
            Method::Periodic {
                period: 10,
                res: 64,
            },
            Method::Naive { headroom: 1.5 },
        ]
    }

    /// Instantiates the protocol.
    pub fn build(&self) -> Box<dyn Protocol> {
        match *self {
            Method::DknnSet(p) => Box::new(Dknn::set(p)),
            Method::DknnOrder(p) => Box::new(Dknn::ordered(p)),
            Method::DknnBuffer { params, buffer } => Box::new(DknnBuffered::new(params, buffer)),
            Method::Centralized { res } => Box::new(Centralized::new(res)),
            Method::Periodic { period, res } => Box::new(Periodic::new(period, res)),
            Method::Naive { headroom } => Box::new(NaiveBroadcast::new(headroom)),
        }
    }

    /// Display name, derived from the built protocol so the two can never
    /// disagree ([`Protocol::name`] is the single source of truth).
    pub fn name(&self) -> &'static str {
        self.build().name()
    }

    /// Parses a canonical protocol name (`"dknn-set"`, `"centralized"`, …)
    /// into the standard-suite method of that name carrying `params`.
    ///
    /// The inverse of [`Method::name`] over [`Method::standard_suite`]:
    /// shape knobs that are not [`DknnParams`] (buffer size, grid
    /// resolution, period, headroom) take the standard-suite defaults.
    /// Returns `None` for unknown names — callers (CLI flags, JSON configs)
    /// turn that into their own error.
    pub fn parse(name: &str, params: DknnParams) -> Option<Method> {
        Method::standard_suite(params)
            .into_iter()
            .find(|m| m.name() == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_built_protocols() {
        for m in Method::standard_suite(DknnParams::default()) {
            assert_eq!(m.name(), m.build().name());
        }
    }

    #[test]
    fn parse_inverts_name_for_the_standard_suite() {
        let params = DknnParams::default();
        for m in Method::standard_suite(params) {
            assert_eq!(Method::parse(m.name(), params), Some(m));
        }
        assert_eq!(Method::parse("no-such-protocol", params), None);
    }

    #[test]
    fn parse_carries_the_given_params() {
        let params = DknnParams {
            alpha: 0.25,
            ..DknnParams::default()
        };
        match Method::parse("dknn-order", params) {
            Some(Method::DknnOrder(p)) => assert_eq!(p.alpha, 0.25),
            other => panic!("unexpected parse result {other:?}"),
        }
    }
}
