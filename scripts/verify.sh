#!/usr/bin/env bash
# Tier-1 verification gate. Fully offline: the workspace has zero external
# dependencies, so no network (and no crates.io) is ever needed.
#
#   scripts/verify.sh
#
# Checks, in order:
#   1. release build of the whole workspace
#   2. the full test suite (unit + property + integration + doc tests)
#   3. rustfmt conformance
#   4. determinism: two runs of `expt --seed 42` must be byte-identical
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline --workspace"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> determinism gate (expt --seed 42, twice)"
a="$(cargo run -q --release --offline -p mknn-bench --bin expt -- --seed 42)"
b="$(cargo run -q --release --offline -p mknn-bench --bin expt -- --seed 42)"
if [ "$a" != "$b" ]; then
    echo "FAIL: expt --seed 42 output differs between runs" >&2
    exit 1
fi

echo "verify: OK"
