#!/usr/bin/env bash
# Tier-1 verification gate. Fully offline: the workspace has zero external
# dependencies, so no network (and no crates.io) is ever needed.
#
#   scripts/verify.sh              # run every stage, in order
#   scripts/verify.sh golden shards  # run only the named stages
#
# Stages, in default order:
#   build        release build of the whole workspace
#   clippy       cargo clippy --all-targets with warnings denied
#   test         the full test suite (unit + property + integration + doc)
#   fmt          rustfmt conformance
#   determinism  two runs of `expt --seed 42` byte-identical, and identical
#                across MKNN_THREADS=1 vs 4
#   golden       `expt --seed 42` byte-identical to the committed golden
#                file (scripts/golden/smoke_seed42.json) — proves
#                FaultPlan::none() is inert and guards every metric field
#   shards       `expt --seed 42 --shards 1` byte-identical to the golden
#                file (G=1 is the single server), and G=4 byte-identical
#                across runs, thread counts, and under the chaos preset
#   chaos        `expt --seed 42 --fault chaos` byte-identical across two
#                runs AND across MKNN_THREADS=1 vs 4 — fault injection is
#                as deterministic as the perfect link
#   recovery     `expt --seed 42 --shards 4 --fault crash` byte-identical
#                across two runs and MKNN_THREADS=1 vs 4, with crash
#                metrics actually present, plus the bounded-reconvergence
#                property suite (tests/shard_recovery.rs)
#   oracle       MKNN_ORACLE=brute byte-identical to the indexed default,
#                and the indexed oracle not slower on a query-heavy episode
#   bench        the committed BENCH_shards.json parses as a BenchSummary
#                and round-trips through the mknn_util JSON codec
#   tickbench    the committed BENCH_tick.json parses; a sized smoke run
#                (above the PAR_MIN_DEVICES threshold) is byte-identical
#                across MKNN_THREADS/--threads 1 vs 8; fast-scale E18
#                re-asserts cross-width identity and, on multi-core
#                runners, that T=8 is not slower than T=1
#   wire         bit-level wire format: every message and frame item
#                round-trips (property suite), the legacy vs scoped byte
#                models agree on everything but the byte ledger (with the
#                measured reduction reported), and the scoped smoke run is
#                byte-identical to the golden across MKNN_THREADS=1 vs 8
#   speedup      (informational) fast-mode suite on one worker vs all cores
#
# Every byte gate routes through `diff` on temp files; a failing
# `cargo run -q` inside a capture aborts the script with a non-zero exit
# instead of silently diffing empty output.
set -euo pipefail
cd "$(dirname "$0")/.."

TMPDIR_VERIFY="$(mktemp -d)"
trap 'rm -rf "$TMPDIR_VERIFY"' EXIT

EXPT=(cargo run -q --release --offline -p mknn-bench --bin expt --)

# run_expt <outfile> [ENV=VAL ...] -- <expt args...>
# Runs the expt binary with the given environment overrides and arguments,
# capturing stdout into "$TMPDIR_VERIFY/<outfile>". Any non-zero exit from
# the binary fails the whole script (set -e does not see failures inside
# command substitutions used as arguments, so captures go through files).
run_expt() {
    local out="$TMPDIR_VERIFY/$1"; shift
    local envs=()
    while [ "$1" != "--" ]; do envs+=("$1"); shift; done
    shift
    if ! env "${envs[@]}" "${EXPT[@]}" "$@" > "$out"; then
        echo "FAIL: expt $* exited non-zero" >&2
        exit 1
    fi
}

# expect_same <file_a> <file_b> <message>
expect_same() {
    if ! diff -u "$TMPDIR_VERIFY/$1" "$TMPDIR_VERIFY/$2" >&2; then
        echo "FAIL: $3" >&2
        exit 1
    fi
}

stage_build() {
    echo "==> cargo build --release --offline --workspace"
    cargo build --release --offline --workspace
}

stage_clippy() {
    echo "==> cargo clippy --all-targets --offline -- -D warnings"
    cargo clippy --all-targets --offline -- -D warnings
}

stage_test() {
    echo "==> cargo test -q --offline --workspace"
    cargo test -q --offline --workspace
}

stage_fmt() {
    echo "==> cargo fmt --check"
    cargo fmt --all --check
}

stage_determinism() {
    echo "==> determinism gate (expt --seed 42, twice)"
    run_expt det_a -- --seed 42
    run_expt det_b -- --seed 42
    expect_same det_a det_b "expt --seed 42 output differs between runs"

    echo "==> thread-determinism gate (expt --seed 42, MKNN_THREADS=1 vs 4)"
    run_expt det_t1 MKNN_THREADS=1 -- --seed 42
    run_expt det_t4 MKNN_THREADS=4 -- --seed 42
    expect_same det_t1 det_t4 "expt --seed 42 output differs across thread counts"
}

stage_golden() {
    echo "==> golden gate (expt --seed 42 vs scripts/golden/smoke_seed42.json)"
    run_expt golden -- --seed 42
    if ! diff -u scripts/golden/smoke_seed42.json "$TMPDIR_VERIFY/golden"; then
        echo "FAIL: expt --seed 42 output differs from the committed golden file" >&2
        echo "      (if the metrics schema changed on purpose, regenerate it:" >&2
        echo "       cargo run -q --release --offline -p mknn-bench --bin expt -- --seed 42 > scripts/golden/smoke_seed42.json)" >&2
        exit 1
    fi
}

stage_shards() {
    echo "==> shard gate (expt --seed 42 --shards 1 vs the golden file)"
    run_expt sh_g1 -- --seed 42 --shards 1
    if ! diff -u scripts/golden/smoke_seed42.json "$TMPDIR_VERIFY/sh_g1"; then
        echo "FAIL: --shards 1 is not byte-identical to the single-server golden" >&2
        exit 1
    fi

    echo "==> shard gate (G=4: two runs + thread counts + chaos)"
    run_expt sh_a -- --seed 42 --shards 4
    run_expt sh_b -- --seed 42 --shards 4
    expect_same sh_a sh_b "expt --seed 42 --shards 4 differs between runs"
    run_expt sh_t1 MKNN_THREADS=1 -- --seed 42 --shards 4
    run_expt sh_t4 MKNN_THREADS=4 -- --seed 42 --shards 4
    expect_same sh_t1 sh_t4 "expt --seed 42 --shards 4 differs across thread counts"
    run_expt sh_c1 -- --seed 42 --shards 4 --fault chaos
    run_expt sh_c2 -- --seed 42 --shards 4 --fault chaos
    expect_same sh_c1 sh_c2 "expt --seed 42 --shards 4 --fault chaos differs between runs"

    echo "==> shard gate (parallel server phase: G=4 chaos, 1 vs 8 pool workers)"
    run_expt sh_ct1 MKNN_THREADS=1 -- --seed 42 --shards 4 --fault chaos
    run_expt sh_ct8 MKNN_THREADS=8 -- --seed 42 --shards 4 --fault chaos
    expect_same sh_ct1 sh_ct8 \
        "parallel server phase is not byte-identical across pool widths (G=4 chaos)"
    if diff -q "$TMPDIR_VERIFY/sh_g1" "$TMPDIR_VERIFY/sh_a" > /dev/null; then
        echo "FAIL: G=4 produced no shard counters (overlay is inert)" >&2
        exit 1
    fi
}

stage_chaos() {
    echo "==> chaos gate (expt --seed 42 --fault chaos: two runs + thread counts)"
    run_expt chaos_a -- --seed 42 --fault chaos
    run_expt chaos_b -- --seed 42 --fault chaos
    expect_same chaos_a chaos_b "expt --seed 42 --fault chaos differs between runs"
    run_expt chaos_t1 MKNN_THREADS=1 -- --seed 42 --fault chaos
    run_expt chaos_t4 MKNN_THREADS=4 -- --seed 42 --fault chaos
    expect_same chaos_t1 chaos_t4 "expt --seed 42 --fault chaos differs across thread counts"
    run_expt chaos_ref -- --seed 42
    if diff -q "$TMPDIR_VERIFY/chaos_ref" "$TMPDIR_VERIFY/chaos_a" > /dev/null; then
        echo "FAIL: the chaos fault plan had no effect on the smoke run" >&2
        exit 1
    fi
}

stage_recovery() {
    echo "==> recovery gate (expt --seed 42 --shards 4 --fault crash: two runs + thread counts)"
    run_expt rec_a -- --seed 42 --shards 4 --fault crash
    run_expt rec_b -- --seed 42 --shards 4 --fault crash
    expect_same rec_a rec_b "expt --seed 42 --shards 4 --fault crash differs between runs"
    run_expt rec_t1 MKNN_THREADS=1 -- --seed 42 --shards 4 --fault crash
    run_expt rec_t4 MKNN_THREADS=4 -- --seed 42 --shards 4 --fault crash
    expect_same rec_t1 rec_t4 "expt --seed 42 --shards 4 --fault crash differs across thread counts"

    # The crash plan must actually schedule windows on the smoke world
    # (crash counters are omit-when-zero, so their presence proves it),
    # and a crash-free G=4 run must not carry any of them.
    if ! grep -q '"shard_crashes"' "$TMPDIR_VERIFY/rec_a"; then
        echo "FAIL: the crash preset scheduled no shard crashes on the smoke run" >&2
        exit 1
    fi
    run_expt rec_ref -- --seed 42 --shards 4
    if grep -Eq '"(shard_crashes|crash_down_ticks|recover_msgs|recover_bytes)"' \
            "$TMPDIR_VERIFY/rec_ref"; then
        echo "FAIL: a crash-free run leaked crash/recovery counters" >&2
        exit 1
    fi

    echo "==> reconvergence-bound gate (tests/shard_recovery.rs)"
    cargo test -q --release --offline --test shard_recovery
}

stage_oracle() {
    echo "==> oracle-equivalence gate (MKNN_ORACLE=brute expt --seed 42)"
    run_expt or_idx -- --seed 42
    run_expt or_brute MKNN_ORACLE=brute -- --seed 42
    expect_same or_idx or_brute "the brute-force and indexed snapshot oracles disagree"

    # The indexed oracle pays an O(N) bulk load per verified tick, so its
    # win shows on query-heavy episodes; the smoke default (Q = 5) is too
    # small to be a fair race. Use a sized smoke run and require "not
    # slower" (the suite-scale speedup is recorded in EXPERIMENTS.md).
    echo "==> oracle-speedup gate (N=20000, Q=100: indexed vs brute wall time)"
    local speed_args=(--seed 42 --n 20000 --queries 100 --ticks 60 --method dknn-set --timing)
    if ! "${EXPT[@]}" "${speed_args[@]}" \
            > "$TMPDIR_VERIFY/sp_idx" 2> "$TMPDIR_VERIFY/sp_idx_err"; then
        echo "FAIL: sized smoke run (indexed) exited non-zero" >&2
        exit 1
    fi
    if ! MKNN_ORACLE=brute "${EXPT[@]}" "${speed_args[@]}" \
            > "$TMPDIR_VERIFY/sp_brute" 2> "$TMPDIR_VERIFY/sp_brute_err"; then
        echo "FAIL: sized smoke run (brute) exited non-zero" >&2
        exit 1
    fi
    expect_same sp_idx sp_brute "oracle modes disagree on the sized smoke run"
    local oi obr
    oi="$(sed -n 's/.*oracle=\([0-9.]*\).*/\1/p' "$TMPDIR_VERIFY/sp_idx_err")"
    obr="$(sed -n 's/.*oracle=\([0-9.]*\).*/\1/p' "$TMPDIR_VERIFY/sp_brute_err")"
    awk -v i="$oi" -v b="$obr" 'BEGIN {
        printf "oracle wall time: indexed %.3fs, brute %.3fs (%.1fx)\n", i, b, b / i;
        exit !(i <= b) }' || {
        echo "FAIL: the indexed oracle was slower than brute force" >&2
        exit 1
    }
}

stage_bench() {
    echo "==> bench gate (BENCH_shards.json parses and round-trips)"
    if [ ! -f BENCH_shards.json ]; then
        echo "FAIL: BENCH_shards.json is missing (regenerate:" >&2
        echo "      cargo run --release --offline -p mknn-bench --bin expt --" \
             "--exp e17 --full --bench-out BENCH_shards.json)" >&2
        exit 1
    fi
    "${EXPT[@]}" --check-bench BENCH_shards.json
}

stage_tickbench() {
    echo "==> tick-bench gate (BENCH_tick.json parses and round-trips)"
    if [ ! -f BENCH_tick.json ]; then
        echo "FAIL: BENCH_tick.json is missing (regenerate:" >&2
        echo "      cargo run --release --offline -p mknn-bench --bin expt --" \
             "--exp e18 --full --bench-out BENCH_tick.json)" >&2
        exit 1
    fi
    "${EXPT[@]}" --check-bench BENCH_tick.json

    # The chunked client phase only engages above PAR_MIN_DEVICES (4096),
    # so the standard smoke (N=400) never exercises it; this sized smoke
    # does, across both the env knob and the pinned-pool knob.
    echo "==> intra-episode determinism gate (N=6000, MKNN_THREADS=1 vs 8)"
    local sized=(--seed 42 --n 6000 --queries 10 --ticks 20)
    run_expt tb_e1 MKNN_THREADS=1 -- "${sized[@]}"
    run_expt tb_e8 MKNN_THREADS=8 -- "${sized[@]}"
    expect_same tb_e1 tb_e8 "sized smoke differs across MKNN_THREADS 1 vs 8"
    run_expt tb_p1 -- "${sized[@]}" --threads 1
    run_expt tb_p8 -- "${sized[@]}" --threads 8
    # The config echo records the pinned width; the episodes may not differ.
    grep -v '"client_threads"' "$TMPDIR_VERIFY/tb_p1" > "$TMPDIR_VERIFY/tb_p1n"
    grep -v '"client_threads"' "$TMPDIR_VERIFY/tb_p8" > "$TMPDIR_VERIFY/tb_p8n"
    expect_same tb_p1n tb_p8n "sized smoke differs across --threads 1 vs 8"

    # Fast-scale E18 re-runs its in-process cross-width identity assertion
    # and prints the measured scaling table. Whole-episode wall time has an
    # Amdahl ceiling well under the pool width (the world step and routing
    # stay sequential by the determinism contract, and E18 runs a single
    # server shard so its server phase is one task; at N = 1M the
    # parallelizable protocol share is ~54% of wall, capping even perfect
    # scaling below 2x — E17 measures the sharded server phase's own
    # parallelism), so the gate requires that T=8 is *not slower* than T=1
    # on parallel hardware and reports the measurement; on a single-core
    # runner the run is identity-check-only.
    echo "==> tick-loop scaling (expt --exp e18, fast scale)"
    "${EXPT[@]}" --exp e18 | tee "$TMPDIR_VERIFY/tb_e18"
    if [ "$(nproc)" -ge 2 ]; then
        awk '$1 == "T=8" && $2 == "dknn-set" { found = 1; exit !($5 >= 0.9) }
             END { if (!found) exit 1 }' "$TMPDIR_VERIFY/tb_e18" || {
            echo "FAIL: dknn-set at T=8 ran >10% slower than T=1 on a $(nproc)-core runner" >&2
            exit 1
        }
    else
        echo "(single-core runner: scaling measured for the record only)"
    fi
}

stage_wire() {
    echo "==> wire round-trip gate (mknn-net encode/decode property suite)"
    cargo test -q --release --offline -p mknn-net

    # Old vs new byte model on the smoke world: logical tallies must agree
    # exactly (the scope/delta/frame pass is accounting-only); the byte
    # ledger is where the scoped model earns its keep, so report it.
    echo "==> byte-model gate (expt --seed 42, --downlink legacy vs scoped)"
    run_expt wire_legacy -- --seed 42 --downlink legacy
    run_expt wire_scoped -- --seed 42 --downlink scoped
    # Strip the byte-ledger counters and the config echo's mode key; the
    # trailing-comma normalization keeps the diff insensitive to a stripped
    # line having been the last key of its object.
    for f in wire_legacy wire_scoped; do
        grep -Ev '"(downlink_bytes|frames|frame_header_bytes|delta_full_fallbacks|downlink)"' \
            "$TMPDIR_VERIFY/$f" | sed 's/,$//' > "$TMPDIR_VERIFY/${f}_stripped"
    done
    expect_same wire_legacy_stripped wire_scoped_stripped \
        "downlink byte models diverge beyond the byte ledger"
    awk '/"downlink_bytes"/ { gsub(/[^0-9]/, ""); sum += $0 }
         END { print sum }' "$TMPDIR_VERIFY/wire_legacy" > "$TMPDIR_VERIFY/wire_lb"
    awk '/"downlink_bytes"/ { gsub(/[^0-9]/, ""); sum += $0 }
         END { print sum }' "$TMPDIR_VERIFY/wire_scoped" > "$TMPDIR_VERIFY/wire_sb"
    awk -v l="$(cat "$TMPDIR_VERIFY/wire_lb")" -v s="$(cat "$TMPDIR_VERIFY/wire_sb")" 'BEGIN {
        printf "downlink bytes (all methods): legacy %d, scoped %d (%.2fx)\n", l, s, l / s;
        exit !(s > 0 && s < l) }' || {
        echo "FAIL: the scoped byte model did not reduce smoke-run downlink bytes" >&2
        exit 1
    }

    echo "==> wire determinism gate (scoped golden, MKNN_THREADS=1 vs 8)"
    run_expt wire_t1 MKNN_THREADS=1 -- --seed 42
    run_expt wire_t8 MKNN_THREADS=8 -- --seed 42
    expect_same wire_t1 wire_t8 "scoped smoke differs across MKNN_THREADS 1 vs 8"
    if ! diff -u scripts/golden/smoke_seed42.json "$TMPDIR_VERIFY/wire_t8" >&2; then
        echo "FAIL: threaded scoped smoke differs from the committed golden file" >&2
        exit 1
    fi
}

stage_speedup() {
    # Informational: wall-clock of the fast-mode suite on one worker vs.
    # all cores. On a multi-core runner the parallel run should be
    # measurably faster; on a single-core box the two are expected to tie,
    # so this prints the measurement without failing the gate.
    echo "==> parallel speedup (expt --exp all, MKNN_THREADS=1 vs default)"
    local start seq_end par_end
    start=$(date +%s.%N)
    MKNN_THREADS=1 "${EXPT[@]}" --exp all > /dev/null
    seq_end=$(date +%s.%N)
    MKNN_THREADS= "${EXPT[@]}" --exp all > /dev/null
    par_end=$(date +%s.%N)
    awk -v s="$start" -v m="$seq_end" -v e="$par_end" -v cores="$(nproc)" \
        'BEGIN { seq = m - s; par = e - m;
                 printf "sequential: %.1fs  parallel (%s cores): %.1fs  speedup: %.2fx\n",
                        seq, cores, par, seq / par }'
}

ALL_STAGES=(build clippy test fmt determinism golden shards chaos recovery oracle bench tickbench wire speedup)

stages=("$@")
if [ ${#stages[@]} -eq 0 ]; then
    stages=("${ALL_STAGES[@]}")
fi
for s in "${stages[@]}"; do
    case " ${ALL_STAGES[*]} " in
        *" $s "*) "stage_$s" ;;
        *) echo "unknown stage: $s (valid: ${ALL_STAGES[*]})" >&2; exit 2 ;;
    esac
done

echo "verify: OK (${stages[*]})"
