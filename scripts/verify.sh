#!/usr/bin/env bash
# Tier-1 verification gate. Fully offline: the workspace has zero external
# dependencies, so no network (and no crates.io) is ever needed.
#
#   scripts/verify.sh
#
# Checks, in order:
#   1. release build of the whole workspace
#   2. the full test suite (unit + property + integration + doc tests)
#   3. rustfmt conformance
#   4. determinism: two runs of `expt --seed 42` must be byte-identical
#   5. thread determinism: `expt --seed 42` under MKNN_THREADS=1 and
#      MKNN_THREADS=4 must be byte-identical
#   6. golden gate: `expt --seed 42` must be byte-identical to the
#      committed golden file (scripts/golden/smoke_seed42.json) — proves
#      FaultPlan::none() is inert and guards every metric field at once
#   7. chaos gate: `expt --seed 42 --fault chaos` must be byte-identical
#      across two runs AND across MKNN_THREADS=1 vs 4 — fault injection
#      is as deterministic as the perfect link
#   8. (informational) parallel speedup of the fast-mode suite: elapsed
#      time of `expt --exp all` on one worker vs. all cores
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline --workspace"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> determinism gate (expt --seed 42, twice)"
a="$(cargo run -q --release --offline -p mknn-bench --bin expt -- --seed 42)"
b="$(cargo run -q --release --offline -p mknn-bench --bin expt -- --seed 42)"
if [ "$a" != "$b" ]; then
    echo "FAIL: expt --seed 42 output differs between runs" >&2
    exit 1
fi

echo "==> thread-determinism gate (expt --seed 42, MKNN_THREADS=1 vs 4)"
t1="$(MKNN_THREADS=1 cargo run -q --release --offline -p mknn-bench --bin expt -- --seed 42)"
t4="$(MKNN_THREADS=4 cargo run -q --release --offline -p mknn-bench --bin expt -- --seed 42)"
if [ "$t1" != "$t4" ]; then
    echo "FAIL: expt --seed 42 output differs across thread counts" >&2
    exit 1
fi

echo "==> golden gate (expt --seed 42 vs scripts/golden/smoke_seed42.json)"
if ! diff -u scripts/golden/smoke_seed42.json <(printf '%s\n' "$a"); then
    echo "FAIL: expt --seed 42 output differs from the committed golden file" >&2
    echo "      (if the metrics schema changed on purpose, regenerate it:" >&2
    echo "       cargo run -q --release --offline -p mknn-bench --bin expt -- --seed 42 > scripts/golden/smoke_seed42.json)" >&2
    exit 1
fi

echo "==> chaos gate (expt --seed 42 --fault chaos: two runs + thread counts)"
c1="$(cargo run -q --release --offline -p mknn-bench --bin expt -- --seed 42 --fault chaos)"
c2="$(cargo run -q --release --offline -p mknn-bench --bin expt -- --seed 42 --fault chaos)"
if [ "$c1" != "$c2" ]; then
    echo "FAIL: expt --seed 42 --fault chaos output differs between runs" >&2
    exit 1
fi
ct1="$(MKNN_THREADS=1 cargo run -q --release --offline -p mknn-bench --bin expt -- --seed 42 --fault chaos)"
ct4="$(MKNN_THREADS=4 cargo run -q --release --offline -p mknn-bench --bin expt -- --seed 42 --fault chaos)"
if [ "$ct1" != "$ct4" ]; then
    echo "FAIL: expt --seed 42 --fault chaos output differs across thread counts" >&2
    exit 1
fi
if [ "$c1" == "$a" ]; then
    echo "FAIL: the chaos fault plan had no effect on the smoke run" >&2
    exit 1
fi

# Informational: wall-clock of the fast-mode suite on one worker vs. all
# cores. On a multi-core runner the parallel run should be measurably
# faster; on a single-core box the two are expected to tie, so this
# prints the measurement without failing the gate.
echo "==> parallel speedup (expt --exp all, MKNN_THREADS=1 vs default)"
start=$(date +%s.%N)
MKNN_THREADS=1 cargo run -q --release --offline -p mknn-bench --bin expt -- --exp all > /dev/null
seq_end=$(date +%s.%N)
MKNN_THREADS= cargo run -q --release --offline -p mknn-bench --bin expt -- --exp all > /dev/null
par_end=$(date +%s.%N)
awk -v s="$start" -v m="$seq_end" -v e="$par_end" -v cores="$(nproc)" \
    'BEGIN { seq = m - s; par = e - m;
             printf "sequential: %.1fs  parallel (%s cores): %.1fs  speedup: %.2fx\n",
                    seq, cores, par, seq / par }'

echo "verify: OK"
