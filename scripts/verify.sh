#!/usr/bin/env bash
# Tier-1 verification gate. Fully offline: the workspace has zero external
# dependencies, so no network (and no crates.io) is ever needed.
#
#   scripts/verify.sh
#
# Checks, in order:
#   1. release build of the whole workspace
#   2. the full test suite (unit + property + integration + doc tests)
#   3. rustfmt conformance
#   4. determinism: two runs of `expt --seed 42` must be byte-identical
#   5. thread determinism: `expt --seed 42` under MKNN_THREADS=1 and
#      MKNN_THREADS=4 must be byte-identical
#   6. golden gate: `expt --seed 42` must be byte-identical to the
#      committed golden file (scripts/golden/smoke_seed42.json) — proves
#      FaultPlan::none() is inert and guards every metric field at once
#   7. chaos gate: `expt --seed 42 --fault chaos` must be byte-identical
#      across two runs AND across MKNN_THREADS=1 vs 4 — fault injection
#      is as deterministic as the perfect link
#   8. oracle-equivalence gate: `MKNN_ORACLE=brute expt --seed 42` must be
#      byte-identical to the default (indexed) run — the per-tick snapshot
#      kd-tree oracle and the O(N)-per-query brute-force scan are
#      interchangeable down to the last tie-break
#   9. oracle-speedup gate: on a query-heavy smoke episode the indexed
#      oracle must not be slower than brute force (stdout stays
#      byte-identical; the measured speedup is printed)
#  10. (informational) parallel speedup of the fast-mode suite: elapsed
#      time of `expt --exp all` on one worker vs. all cores
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline --workspace"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> determinism gate (expt --seed 42, twice)"
a="$(cargo run -q --release --offline -p mknn-bench --bin expt -- --seed 42)"
b="$(cargo run -q --release --offline -p mknn-bench --bin expt -- --seed 42)"
if [ "$a" != "$b" ]; then
    echo "FAIL: expt --seed 42 output differs between runs" >&2
    exit 1
fi

echo "==> thread-determinism gate (expt --seed 42, MKNN_THREADS=1 vs 4)"
t1="$(MKNN_THREADS=1 cargo run -q --release --offline -p mknn-bench --bin expt -- --seed 42)"
t4="$(MKNN_THREADS=4 cargo run -q --release --offline -p mknn-bench --bin expt -- --seed 42)"
if [ "$t1" != "$t4" ]; then
    echo "FAIL: expt --seed 42 output differs across thread counts" >&2
    exit 1
fi

echo "==> golden gate (expt --seed 42 vs scripts/golden/smoke_seed42.json)"
if ! diff -u scripts/golden/smoke_seed42.json <(printf '%s\n' "$a"); then
    echo "FAIL: expt --seed 42 output differs from the committed golden file" >&2
    echo "      (if the metrics schema changed on purpose, regenerate it:" >&2
    echo "       cargo run -q --release --offline -p mknn-bench --bin expt -- --seed 42 > scripts/golden/smoke_seed42.json)" >&2
    exit 1
fi

echo "==> chaos gate (expt --seed 42 --fault chaos: two runs + thread counts)"
c1="$(cargo run -q --release --offline -p mknn-bench --bin expt -- --seed 42 --fault chaos)"
c2="$(cargo run -q --release --offline -p mknn-bench --bin expt -- --seed 42 --fault chaos)"
if [ "$c1" != "$c2" ]; then
    echo "FAIL: expt --seed 42 --fault chaos output differs between runs" >&2
    exit 1
fi
ct1="$(MKNN_THREADS=1 cargo run -q --release --offline -p mknn-bench --bin expt -- --seed 42 --fault chaos)"
ct4="$(MKNN_THREADS=4 cargo run -q --release --offline -p mknn-bench --bin expt -- --seed 42 --fault chaos)"
if [ "$ct1" != "$ct4" ]; then
    echo "FAIL: expt --seed 42 --fault chaos output differs across thread counts" >&2
    exit 1
fi
if [ "$c1" == "$a" ]; then
    echo "FAIL: the chaos fault plan had no effect on the smoke run" >&2
    exit 1
fi

echo "==> oracle-equivalence gate (MKNN_ORACLE=brute expt --seed 42)"
ob="$(MKNN_ORACLE=brute cargo run -q --release --offline -p mknn-bench --bin expt -- --seed 42)"
if [ "$ob" != "$a" ]; then
    echo "FAIL: the brute-force and indexed snapshot oracles disagree" >&2
    exit 1
fi

# The indexed oracle pays an O(N) bulk load per verified tick, so its win
# shows on query-heavy episodes; the smoke default (Q = 5) is too small to
# be a fair race. Use a sized smoke run and require "not slower" (the
# measured speedup at suite scale is recorded in EXPERIMENTS.md).
echo "==> oracle-speedup gate (N=20000, Q=100: indexed vs brute wall time)"
speed_args=(--seed 42 --n 20000 --queries 100 --ticks 60 --method dknn-set --timing)
si_err="$(mktemp)"; sb_err="$(mktemp)"
si="$(cargo run -q --release --offline -p mknn-bench --bin expt -- "${speed_args[@]}" 2>"$si_err")"
sb="$(MKNN_ORACLE=brute cargo run -q --release --offline -p mknn-bench --bin expt -- "${speed_args[@]}" 2>"$sb_err")"
if [ "$si" != "$sb" ]; then
    echo "FAIL: oracle modes disagree on the sized smoke run" >&2
    exit 1
fi
oi="$(sed -n 's/.*oracle=\([0-9.]*\).*/\1/p' "$si_err")"
obr="$(sed -n 's/.*oracle=\([0-9.]*\).*/\1/p' "$sb_err")"
rm -f "$si_err" "$sb_err"
awk -v i="$oi" -v b="$obr" 'BEGIN {
    printf "oracle wall time: indexed %.3fs, brute %.3fs (%.1fx)\n", i, b, b / i;
    exit !(i <= b) }' || {
    echo "FAIL: the indexed oracle was slower than brute force" >&2
    exit 1
}

# Informational: wall-clock of the fast-mode suite on one worker vs. all
# cores. On a multi-core runner the parallel run should be measurably
# faster; on a single-core box the two are expected to tie, so this
# prints the measurement without failing the gate.
echo "==> parallel speedup (expt --exp all, MKNN_THREADS=1 vs default)"
start=$(date +%s.%N)
MKNN_THREADS=1 cargo run -q --release --offline -p mknn-bench --bin expt -- --exp all > /dev/null
seq_end=$(date +%s.%N)
MKNN_THREADS= cargo run -q --release --offline -p mknn-bench --bin expt -- --exp all > /dev/null
par_end=$(date +%s.%N)
awk -v s="$start" -v m="$seq_end" -v e="$par_end" -v cores="$(nproc)" \
    'BEGIN { seq = m - s; par = e - m;
             printf "sequential: %.1fs  parallel (%s cores): %.1fs  speedup: %.2fx\n",
                    seq, cores, par, seq / par }'

echo "verify: OK"
