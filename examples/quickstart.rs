//! Quickstart: register a moving kNN query, watch it stay exact while the
//! whole world moves, and compare what it cost against brute force.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use moving_knn::prelude::*;

fn main() {
    // 1. A world: 2,000 vehicles in a 5 km × 5 km downtown, random-waypoint
    //    motion, speeds between 5 and 15 m/tick.
    let config = SimConfig {
        workload: WorkloadSpec {
            n_objects: 2_000,
            space_side: 5_000.0,
            speeds: SpeedDist::Uniform {
                min: 5.0,
                max: 15.0,
            },
            ..WorkloadSpec::default()
        },
        n_queries: 4, // four focal vehicles, spread over the id space
        k: 8,         // each continuously tracks its 8 nearest neighbors
        ticks: 120,
        verify: VerifyMode::Record, // oracle-check every answer, every tick
        ..SimConfig::default()
    };

    // 2. The distributed protocol, sized for this workload's speed bounds.
    let params = config.dknn_params();
    let mut sim = Simulation::new(&config, Box::new(Dknn::set(params)));

    // 3. Step the world and peek at one query's live answer now and then.
    println!("tick | answer of q0 (focal {})", sim.specs()[0].focal);
    for tick in 1..=config.ticks {
        sim.step();
        if tick % 30 == 0 {
            let ids: Vec<String> = sim
                .answer(QueryId(0))
                .iter()
                .map(|id| id.to_string())
                .collect();
            println!("{tick:>4} | {}", ids.join(" "));
        }
    }

    // 4. The bill.
    let m = sim.metrics().clone();
    println!();
    println!("method        : {}", m.method);
    println!(
        "exactness     : {:.3} (oracle-verified, every query, every tick)",
        m.exactness()
    );
    println!("recall vs true: {:.3}", m.recall());
    println!(
        "uplink msgs   : {:.1} per tick (centralized would pay ~{} per tick)",
        m.uplink_per_tick(),
        config.workload.n_objects
    );
    println!(
        "downlink      : {:.1} transmissions per tick",
        m.downlink_per_tick()
    );
    println!(
        "bytes         : {:.0} per tick, both directions",
        m.bytes_per_tick()
    );

    assert_eq!(m.exactness(), 1.0, "the distributed answer must be exact");
}
