//! Taxi-fleet dispatch: many concurrent queries over one shared object
//! population, the regime where shared monitoring infrastructure pays off.
//!
//! Each "open ride request" is a moving kNN query pinned to a customer's
//! (moving) phone, continuously tracking the 3 nearest taxis so the dispatch
//! screen is always current. We sweep the number of concurrent requests and
//! show how the per-query communication cost *falls* for the distributed
//! protocol while the centralized cost stays put (it pays the full uplink
//! firehose no matter how few queries run).
//!
//! ```text
//! cargo run --release --example fleet_dispatch
//! ```

use moving_knn::prelude::*;

fn main() {
    let base = SimConfig {
        workload: WorkloadSpec {
            n_objects: 5_000,     // taxis
            space_side: 12_000.0, // a large metro area
            speeds: SpeedDist::Uniform {
                min: 4.0,
                max: 16.0,
            },
            // Taxis idle at stands between rides: only 70% move per tick.
            move_prob: 0.7,
            ..WorkloadSpec::default()
        },
        k: 3,
        ticks: 120,
        verify: VerifyMode::Off,
        ..SimConfig::default()
    };

    println!(
        "taxi dispatch: {} taxis, k = {} nearest per request\n",
        base.workload.n_objects, base.k
    );
    println!(
        "{:>9} {:<12} {:>12} {:>14} {:>16}",
        "requests", "method", "msgs/tick", "msgs/tick/req", "server-ops/tick"
    );

    // One sweep plans the demand × method grid and runs the episodes on the
    // worker pool; results come back in plan order, so the table prints
    // exactly as a sequential loop would have.
    let runs = Sweep::over([5usize, 20, 80, 200].map(|n_queries| {
        let mut config = base.clone();
        config.n_queries = n_queries;
        (n_queries.to_string(), config)
    }))
    .methods_for(|cfg| {
        vec![
            Method::DknnSet(cfg.dknn_params()),
            Method::Centralized { res: 64 },
        ]
    })
    .run();
    for run in runs {
        let m = &run.metrics;
        println!(
            "{:>9} {:<12} {:>12.1} {:>14.2} {:>16.0}",
            m.n_queries,
            m.method,
            m.msgs_per_tick(),
            m.msgs_per_tick() / m.n_queries as f64,
            m.server_ops_per_tick(),
        );
    }

    println!("\nReading the table:");
    println!(" * centralized pays ~N uplink messages/tick regardless of demand, so its");
    println!("   per-request cost explodes when few requests are open;");
    println!(" * the distributed protocol's cost scales with the number of requests and");
    println!("   with answer churn, not with the fleet size.");
}
