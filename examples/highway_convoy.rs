//! Highway convoy monitoring — the motivating scenario of the paper's
//! introduction: vehicles on a road network, each query vehicle continuously
//! tracking its k nearest peers (think convoy keeping, cooperative cruise,
//! or hazard warning propagation).
//!
//! Objects move along a synthetic road grid (the Brinkhoff-generator
//! substitute), so the spatial distribution is anisotropic and clustered on
//! road segments — a harder regime for region-based monitoring than uniform
//! free space.
//!
//! ```text
//! cargo run --release --example highway_convoy
//! ```

use moving_knn::prelude::*;

fn main() {
    let config = SimConfig {
        workload: WorkloadSpec {
            n_objects: 3_000,
            space_side: 8_000.0,
            // A 12 × 12 road lattice with 20% of interior segments removed:
            // dead ends and detours, like a real city grid.
            motion: Motion::RoadNetwork {
                nx: 12,
                ny: 12,
                drop_prob: 0.2,
            },
            speeds: SpeedDist::Classes {
                slow: 6.0,
                medium: 12.0,
                fast: 18.0,
            },
            ..WorkloadSpec::default()
        },
        n_queries: 6,
        k: 5,
        ticks: 150,
        verify: VerifyMode::Record,
        ..SimConfig::default()
    };

    println!(
        "convoy monitoring on a road network: {} vehicles, {} queries, k = {}\n",
        config.workload.n_objects, config.n_queries, config.k
    );

    // Run all three distributed variants and the centralized reference over
    // the *identical* world (same seed ⇒ same trajectories).
    let params = config.dknn_params();
    let methods = [
        Method::DknnSet(params),
        Method::DknnOrder(params),
        Method::DknnBuffer { params, buffer: 6 },
        Method::Centralized { res: 64 },
    ];

    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>8}",
        "method", "up/tick", "down/tick", "bytes/tick", "exact"
    );
    for method in methods {
        let m = Sweep::episode(&config, method);
        println!(
            "{:<12} {:>10.1} {:>10.1} {:>10.0} {:>8.3}",
            m.method,
            m.uplink_per_tick(),
            m.downlink_per_tick(),
            m.bytes_per_tick(),
            m.exactness(),
        );
        assert_eq!(
            m.exactness(),
            1.0,
            "{} must stay exact on road networks",
            m.method
        );
    }

    println!("\nAll methods verified tick-exact against the brute-force oracle.");
    println!("The distributed variants spend uplink only on region/band crossings —");
    println!("on roads, crossings cluster at intersections where traffic mixes.");
}
