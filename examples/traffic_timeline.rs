//! Traffic timeline: record the per-tick message series of the distributed
//! protocol next to the centralized baseline and render both as ASCII
//! sparklines — the clearest way to *see* that distributed monitoring is
//! bursty-but-quiet while centralized is a constant firehose.
//!
//! Also writes both series as CSV under `target/experiments/timeline-*.csv`
//! for external plotting.
//!
//! ```text
//! cargo run --release --example traffic_timeline
//! ```

use moving_knn::prelude::*;
use moving_knn::sim::write_csv;
use std::path::Path;

const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

fn sparkline(values: &[f64]) -> String {
    let max = values.iter().copied().fold(f64::MIN, f64::max).max(1e-9);
    values
        .iter()
        .map(|&v| BARS[((v / max) * (BARS.len() - 1) as f64).round() as usize])
        .collect()
}

/// Buckets a tick series into `width` columns of mean total messages.
fn bucketize(sim_series: &moving_knn::sim::TickSeries, width: usize) -> Vec<f64> {
    let samples = sim_series.samples();
    if samples.is_empty() {
        return Vec::new();
    }
    let per = samples.len().div_ceil(width);
    samples
        .chunks(per)
        .map(|c| {
            c.iter()
                .map(|s| (s.uplink + s.downlink) as f64)
                .sum::<f64>()
                / c.len() as f64
        })
        .collect()
}

fn main() {
    let config = SimConfig {
        workload: WorkloadSpec {
            n_objects: 3_000,
            space_side: 5_000.0,
            ..WorkloadSpec::default()
        },
        n_queries: 10,
        k: 8,
        ticks: 240,
        verify: VerifyMode::Off,
        ..SimConfig::default()
    };

    println!(
        "per-tick total messages, {} objects, {} queries, {} ticks\n",
        config.workload.n_objects, config.n_queries, config.ticks
    );

    for method in [
        Method::DknnSet(config.dknn_params()),
        Method::DknnBuffer {
            params: config.dknn_params(),
            buffer: 3,
        },
        Method::Centralized { res: 64 },
    ] {
        let mut sim = Simulation::new(&config, method.build());
        sim.record_series();
        for _ in 0..config.ticks {
            sim.step();
        }
        let series = sim.series().expect("recording was enabled").clone();
        let buckets = bucketize(&series, 60);
        println!("{:<12} {}", sim.metrics().method, sparkline(&buckets));
        println!(
            "{:<12} mean {:>8.1} msg/tick   peak {:>8}   burstiness {:.2}×\n",
            "",
            series.mean_msgs(),
            series.peak_msgs().map_or(0, |p| p.uplink + p.downlink),
            series.burstiness(),
        );
        let path = format!("target/experiments/timeline-{}.csv", sim.metrics().method);
        if write_csv(Path::new(&path), &series.to_rows()).is_ok() {
            println!("{:<12} [series written to {path}]\n", "");
        }
    }

    println!("Reading the sparklines: the distributed rows spike when answers churn");
    println!("(region refreshes) and go quiet in between; the centralized row is a");
    println!("flat wall of position reports, independent of what the answers do.");
}
