//! Protocol anatomy: a tiny, fully readable world that prints every message
//! the distributed protocol exchanges, tick by tick — the fastest way to
//! understand *why* it is silent most of the time.
//!
//! Nine data objects sit on a line; one walks back and forth across the
//! monitoring threshold of a k=3 query, and the trace shows exactly when
//! Enter/Leave events fire, when the server refreshes the region, and what
//! everything costs.
//!
//! ```text
//! cargo run --example protocol_anatomy
//! ```

use moving_knn::net::{MsgKind, NetStats};
use moving_knn::prelude::*;

fn delta(prev: &NetStats, cur: &NetStats) -> Vec<(MsgKind, u64)> {
    MsgKind::ALL
        .iter()
        .filter_map(|&k| {
            let before = prev.by_kind.get(&k).copied().unwrap_or(0);
            let after = cur.by_kind.get(&k).copied().unwrap_or(0);
            (after > before).then_some((k, after - before))
        })
        .collect()
}

fn main() {
    // Objects 1..=9 at x = 40, 80, 120, …, 360; the focal object 0 at the
    // origin. With k = 3 the threshold lands between objects 3 and 4
    // (x = 120 and 160). Everything is stationary except object 4, which
    // oscillates across the threshold with a 20-tick period (random-walk
    // worlds can't express that, so we use a stationary world and drive
    // object 4 by hand through a custom loop below — the simulation harness
    // is bypassed deliberately; this example talks to the protocol the way
    // the harness does).
    let config = SimConfig {
        workload: WorkloadSpec {
            n_objects: 10,
            space_side: 1_000.0,
            motion: Motion::Stationary,
            speeds: SpeedDist::Fixed(8.0),
            ..WorkloadSpec::default()
        },
        n_queries: 1,
        k: 3,
        ticks: 40,
        geo_cells: 8,
        verify: VerifyMode::Assert,
        fault: FaultPlan::none(),
        shards: 1,
        client_threads: None,
        downlink: DownlinkMode::Scoped,
    };
    // Stationary world: drive the simulation normally; all cost after init
    // should be zero — the protocol is fully quiescent.
    let params = DknnParams {
        v_max_obj: 8.0,
        v_max_q: 8.0,
        ..DknnParams::default()
    };
    let mut sim = Simulation::new(&config, Box::new(Dknn::set(params)));
    println!("— phase 1: a frozen world ————————————————————————————————");
    println!(
        "after init: {} messages total (installs + registration kNN)",
        sim.metrics().net.total_msgs()
    );
    let mut prev = sim.metrics().net.clone();
    for tick in 1..=12u64 {
        sim.step();
        let d = delta(&prev, &sim.metrics().net);
        let hb = if d.is_empty() {
            "silence".to_string()
        } else {
            format!("{d:?}")
        };
        if tick % 4 == 0 {
            println!("tick {tick:>2}: {hb}");
        }
        prev = sim.metrics().net.clone();
    }
    println!("(only periodic heartbeat geocasts — no uplink at all)\n");

    // Phase 2: movement. Same world shape, but random-walk motion so objects
    // drift across the threshold now and then.
    println!("— phase 2: objects start moving ——————————————————————————");
    let mut config2 = config.clone();
    config2.workload.motion = Motion::RandomWalk;
    config2.workload.n_objects = 60;
    let mut sim = Simulation::new(&config2, Box::new(Dknn::set(params)));
    let mut prev = sim.metrics().net.clone();
    for tick in 1..=20u64 {
        sim.step();
        let d = delta(&prev, &sim.metrics().net);
        if !d.is_empty() {
            let parts: Vec<String> = d
                .iter()
                .map(|(k, n)| format!("{}×{}", n, k.label()))
                .collect();
            println!("tick {tick:>2}: {}", parts.join(", "));
        }
        prev = sim.metrics().net.clone();
    }
    let m = sim.metrics();
    println!(
        "\nverified exact on all {} checks; total traffic {} msgs over {} ticks",
        m.exact_checks,
        m.net.total_msgs(),
        m.ticks
    );
    println!("Enter/Leave events trigger a refresh (probe + re-install); between");
    println!("events the devices decide locally that their movement cannot affect");
    println!("the answer, and say nothing.");
}
