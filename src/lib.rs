//! # moving-knn
//!
//! A from-scratch Rust reproduction of *"Distributed Processing of Moving
//! K-Nearest-Neighbor Query on Moving Objects"* (ICDE 2007): continuous kNN
//! queries whose focal point **and** data objects all move, processed by
//! pushing monitoring work onto the moving objects themselves so that the
//! server sees only sparse, answer-relevant events instead of a Θ(N)
//! per-tick location firehose.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`geom`] | `mknn-geom` | points, rects, circles, annuli, time-parameterized distance |
//! | [`index`] | `mknn-index` | uniform grid, R-tree, brute-force oracle |
//! | [`mobility`] | `mknn-mobility` | motion models, road networks, workload generation |
//! | [`net`] | `mknn-net` | message vocabulary, byte model, metric counters, the `Protocol` contract |
//! | [`protocol`] | `mknn-core` | the paper's contribution: the DKNN set / ordered protocols |
//! | [`baselines`] | `mknn-baselines` | centralized, periodic, naive-probe comparison methods |
//! | [`sim`] | `mknn-sim` | simulation engine, oracle verification, experiment runner |
//! | [`util`] | `mknn-util` | seeded PRNG, JSON codec, randomized-test + bench harness |
//!
//! # Quickstart
//!
//! ```
//! use moving_knn::prelude::*;
//!
//! // A small world: 500 objects in a 1 km × 1 km space, 3 queries, k = 5.
//! let config = SimConfig {
//!     workload: WorkloadSpec { n_objects: 500, space_side: 1_000.0, ..WorkloadSpec::default() },
//!     n_queries: 3,
//!     k: 5,
//!     ticks: 50,
//!     ..SimConfig::default()
//! };
//!
//! // Run the distributed set-semantics protocol and the centralized
//! // baseline over identical worlds (same seed).
//! let dknn = Sweep::episode(&config, Method::DknnSet(config.dknn_params()));
//! let central = Sweep::episode(&config, Method::Centralized { res: 32 });
//!
//! assert_eq!(dknn.exactness(), 1.0);          // tick-exact answers …
//! assert!(dknn.net.uplink_msgs < central.net.uplink_msgs); // … for less uplink
//! ```

pub use mknn_baselines as baselines;
pub use mknn_core as protocol;
pub use mknn_geom as geom;
pub use mknn_index as index;
pub use mknn_mobility as mobility;
pub use mknn_net as net;
pub use mknn_sim as sim;
pub use mknn_util as util;

/// The items most applications need, in one import.
pub mod prelude {
    pub use mknn_baselines::{Centralized, NaiveBroadcast, Periodic};
    pub use mknn_core::{Dknn, DknnParams, ParamError};
    pub use mknn_geom::{Circle, ObjectId, Point, QueryId, Rect, Tick, Vector};
    pub use mknn_index::{GridIndex, RTree};
    pub use mknn_mobility::{Motion, MovingObject, Placement, SpeedDist, WorkloadSpec, World};
    pub use mknn_net::{CrashWindow, FaultPlan, Protocol, QuerySpec};
    pub use mknn_sim::{
        DownlinkMode, EpisodeMetrics, EpisodeRun, Method, SimConfig, Simulation, Sweep, VerifyMode,
    };
}
